//! The OPERA stochastic transient solver.
//!
//! One transient analysis of the Galerkin-augmented system yields the full
//! polynomial-chaos representation of every node voltage at every time step:
//! the coefficients `a_i(t)` of `x(t, ξ) = Σ_i a_i(t) ψ_i(ξ)`. Mean, variance
//! and distributions then follow in closed form (paper Eq. 23), which is what
//! makes OPERA one to two orders of magnitude faster than Monte Carlo.
//!
//! How the augmented system is solved is delegated to a pluggable
//! [`SolverBackend`]; this module owns only the
//! backend-independent time-stepping loop. For setup-once/solve-many
//! workloads, prefer the [`OperaEngine`](crate::engine::OperaEngine), which
//! keeps the assembled system and prepared factorisation alive across
//! scenarios.

use std::sync::Arc;

use opera_pce::{OrthogonalBasis, PceSeries};
use opera_sparse::{Panel, SolveWorkspace};
use opera_variation::StochasticGridModel;

use crate::adaptive::{integrate_adaptive, AdaptiveOptions, AdaptiveStats};
use crate::galerkin::GalerkinSystem;
use crate::solver::{BlockJacobiCg, DirectCholesky, PreparedSolver, SolverBackend};
use crate::transient::{rescale_around_anchor, IntegrationMethod, TransientOptions, TR_BDF2_GAMMA};
use crate::{OperaError, Result};

/// Options for the OPERA solver.
#[derive(Debug, Clone)]
pub struct OperaOptions {
    /// Truncation order `p` of the polynomial chaos expansion (the paper uses
    /// 2 or 3).
    pub order: u32,
    /// Transient analysis options.
    pub transient: TransientOptions,
    /// How the augmented system is solved.
    pub solver: Arc<dyn SolverBackend>,
}

impl OperaOptions {
    /// Order-2 expansion with the given transient options (the configuration
    /// used for every Table 1 entry in the paper) and the direct solver.
    pub fn order2(transient: TransientOptions) -> Self {
        Self::with_order(2, transient)
    }

    /// Order-`p` expansion with the given transient options and the direct
    /// Cholesky solver.
    pub fn with_order(order: u32, transient: TransientOptions) -> Self {
        OperaOptions {
            order,
            transient,
            solver: Arc::new(DirectCholesky),
        }
    }

    /// Switches to the block-preconditioned CG solver for the augmented
    /// system.
    pub fn with_iterative_solver(mut self) -> Self {
        self.solver = Arc::new(BlockJacobiCg::default());
        self
    }

    /// Switches to an arbitrary solver backend.
    pub fn with_solver(mut self, solver: Arc<dyn SolverBackend>) -> Self {
        self.solver = solver;
        self
    }

    /// Validates the options.
    ///
    /// # Errors
    ///
    /// Returns [`OperaError::InvalidOptions`] for order 0, invalid solver
    /// parameters, or invalid transient options.
    pub fn validate(&self) -> Result<()> {
        if self.order == 0 {
            return Err(OperaError::InvalidOptions {
                reason: "expansion order must be at least 1".to_string(),
            });
        }
        self.solver.validate()?;
        self.transient.validate()
    }
}

/// The stochastic voltage response: polynomial-chaos coefficients of every
/// node voltage at every time point.
#[derive(Debug, Clone)]
pub struct StochasticSolution {
    basis: OrthogonalBasis,
    times: Vec<f64>,
    node_count: usize,
    /// `coefficients[k][i][n]`: coefficient of basis function `ψ_i` for node
    /// `n` at time `times[k]`.
    coefficients: Vec<Vec<Vec<f64>>>,
}

impl StochasticSolution {
    /// Builds a solution from raw per-time coefficient blocks. Intended for
    /// the solvers in this crate; the lengths must be consistent.
    pub(crate) fn new(
        basis: OrthogonalBasis,
        times: Vec<f64>,
        node_count: usize,
        coefficients: Vec<Vec<Vec<f64>>>,
    ) -> Self {
        debug_assert_eq!(times.len(), coefficients.len());
        StochasticSolution {
            basis,
            times,
            node_count,
            coefficients,
        }
    }

    /// The basis the response is expanded in.
    pub fn basis(&self) -> &OrthogonalBasis {
        &self.basis
    }

    /// Time points of the transient analysis.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of grid nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of basis functions `N + 1`.
    pub fn basis_size(&self) -> usize {
        self.basis.len()
    }

    /// Coefficient of basis function `i` for node `node` at time index `k`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn coefficient(&self, k: usize, i: usize, node: usize) -> f64 {
        self.coefficients[k][i][node]
    }

    /// Mean voltage of `node` at time index `k` (paper Eq. 23: the mean is
    /// the zeroth coefficient).
    pub fn mean_at(&self, k: usize, node: usize) -> f64 {
        self.coefficients[k][0][node]
    }

    /// Variance of the voltage of `node` at time index `k`
    /// (`Σ_{i>0} a_i² ⟨ψ_i²⟩`).
    pub fn variance_at(&self, k: usize, node: usize) -> f64 {
        (1..self.basis.len())
            .map(|i| {
                let a = self.coefficients[k][i][node];
                a * a * self.basis.norm_squared(i)
            })
            .sum()
    }

    /// Standard deviation of the voltage of `node` at time index `k`.
    pub fn std_dev_at(&self, k: usize, node: usize) -> f64 {
        self.variance_at(k, node).sqrt()
    }

    /// The full scalar expansion of one node voltage at one time point.
    ///
    /// # Errors
    ///
    /// Propagates coefficient-length errors (cannot happen for solutions
    /// produced by this crate).
    pub fn node_series(&self, k: usize, node: usize) -> Result<PceSeries> {
        let coeffs: Vec<f64> = (0..self.basis.len())
            .map(|i| self.coefficients[k][i][node])
            .collect();
        Ok(PceSeries::from_coefficients(&self.basis, coeffs)?)
    }

    /// The time index and value of the worst (largest) mean voltage drop of a
    /// given node, measured against `vdd`.
    pub fn worst_mean_drop_of_node(&self, vdd: f64, node: usize) -> (usize, f64) {
        let mut best = (0usize, f64::NEG_INFINITY);
        for k in 0..self.times.len() {
            let drop = vdd - self.mean_at(k, node);
            if drop > best.1 {
                best = (k, drop);
            }
        }
        best
    }

    /// The node, time index and value of the worst mean voltage drop over the
    /// whole grid.
    pub fn worst_mean_drop(&self, vdd: f64) -> (usize, usize, f64) {
        let mut best = (0usize, 0usize, f64::NEG_INFINITY);
        for k in 0..self.times.len() {
            for n in 0..self.node_count {
                let drop = vdd - self.mean_at(k, n);
                if drop > best.2 {
                    best = (n, k, drop);
                }
            }
        }
        best
    }
}

/// Runs the OPERA analysis: assembles the Galerkin system for the model and
/// performs one augmented transient solve.
///
/// # Errors
///
/// Returns [`OperaError::InvalidOptions`] for invalid options and propagates
/// assembly/factorisation errors.
///
/// # Example
///
/// ```
/// use opera::stochastic::{solve, OperaOptions};
/// use opera::transient::TransientOptions;
/// use opera_grid::GridSpec;
/// use opera_variation::{StochasticGridModel, VariationSpec};
///
/// # fn main() -> Result<(), opera::OperaError> {
/// let grid = GridSpec::small_test(100).build()?;
/// let model = StochasticGridModel::inter_die(&grid, &VariationSpec::paper_defaults())?;
/// let options = OperaOptions::order2(TransientOptions::new(0.1e-9, 1.0e-9));
/// let solution = solve(&model, &options)?;
/// let (node, k, drop) = solution.worst_mean_drop(grid.vdd());
/// assert!(drop > 0.0);
/// assert!(solution.std_dev_at(k, node) > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn solve(model: &StochasticGridModel, options: &OperaOptions) -> Result<StochasticSolution> {
    options.validate()?;
    let basis =
        OrthogonalBasis::total_order_mixed(model.families(), model.n_vars(), options.order)?;
    let system = GalerkinSystem::assemble(model, &basis)?;
    solve_assembled(model, &system, options)
}

/// Runs the OPERA transient on an already assembled Galerkin system (useful
/// when the same system is reused with several transient or solver
/// configurations; the expansion order of `options` is ignored in favour of
/// the system's basis).
///
/// # Errors
///
/// Propagates factorisation errors and invalid transient options.
pub fn solve_assembled(
    model: &StochasticGridModel,
    system: &GalerkinSystem,
    options: &OperaOptions,
) -> Result<StochasticSolution> {
    let transient = &options.transient;
    transient.validate()?;
    options.solver.validate()?;
    let prepared = options.solver.prepare(model, system, transient)?;
    run_prepared(
        prepared.as_ref(),
        system,
        |t| system.excitation(model, t),
        transient.time_points(),
        transient.method,
    )
}

/// The backend-independent augmented transient loop: DC start followed by
/// fixed-step implicit integration, with the heavy lifting delegated to an
/// already [prepared](crate::solver::SolverBackend::prepare) solver. The
/// excitation is a closure so callers (in particular the engine's scenario
/// paths) can rescale or substitute the right-hand side without reassembly.
pub(crate) fn run_prepared(
    prepared: &dyn PreparedSolver,
    system: &GalerkinSystem,
    excitation: impl Fn(f64) -> Vec<f64>,
    times: Vec<f64>,
    method: IntegrationMethod,
) -> Result<StochasticSolution> {
    let n = system.node_count();
    let dim = system.dim();
    // One workspace and two state buffers serve the whole transient: the
    // loop double-buffers `state`/`next` and every solve borrows its scratch
    // from `ws`, so the steady-state loop performs zero solver allocations
    // per step (the direct backends' contract, asserted by the engine's
    // allocation-counter hook).
    let mut ws = SolveWorkspace::with_capacity(dim);
    let u0 = excitation(0.0);
    let mut state = vec![0.0; dim];
    prepared.solve_dc_into(&u0, &mut state, &mut ws)?;

    let mut coefficients = Vec::with_capacity(times.len());
    coefficients.push(system.split_solution(&state));
    let mut next = vec![0.0; dim];
    let mut u_prev = u0;
    let two_stage = method == IntegrationMethod::TrBdf2;
    // TR-BDF2 intermediate stage (empty for the single-stage schemes).
    let mut stage = vec![0.0; if two_stage { dim } else { 0 }];
    let mut t_prev = times[0];
    // One span for the whole loop plus a per-step counter: per-step spans
    // would record thousands of tiny ranges and perturb the very loop the
    // allocation-counter hook asserts is steady-state.
    let stepping = opera_trace::span("transient.stepping");
    for &t in &times[1..] {
        opera_trace::count("transient.steps", 1);
        let u_next = excitation(t);
        if two_stage {
            let u_mid = excitation(t_prev + TR_BDF2_GAMMA * (t - t_prev));
            prepared.step_tr_bdf2_into(
                &state, &u_prev, &u_mid, &u_next, &mut stage, &mut next, &mut ws,
            )?;
        } else {
            prepared.step_into(&state, &u_prev, &u_next, &mut next, &mut ws)?;
        }
        coefficients.push(system.split_solution(&next));
        std::mem::swap(&mut state, &mut next);
        u_prev = u_next;
        t_prev = t;
    }
    drop(stepping);
    Ok(StochasticSolution::new(
        system.basis().clone(),
        times,
        n,
        coefficients,
    ))
}

/// Adaptive variant of [`run_prepared`]: the augmented transient is advanced
/// by the LTE-driven TR-BDF2 controller of [`crate::adaptive`] through the
/// prepared solver's [`CompanionFamily`](crate::transient::CompanionFamily)
/// (one symbolic analysis; numeric-only refactorisation per step size), and
/// the polynomial-chaos coefficients are reported on `times` via dense
/// interpolation — bit-exact copies wherever an output time coincides with an
/// accepted step.
pub(crate) fn run_prepared_adaptive(
    prepared: &dyn PreparedSolver,
    system: &GalerkinSystem,
    excitation: impl Fn(f64) -> Vec<f64>,
    times: Vec<f64>,
    adaptive: &AdaptiveOptions,
) -> Result<(StochasticSolution, AdaptiveStats)> {
    let family = prepared
        .companion_family()
        .ok_or_else(|| OperaError::InvalidOptions {
            reason: "adaptive stepping needs a direct solver backend \
                     (no companion family is available)"
                .to_string(),
        })?;
    let n = system.node_count();
    let dim = system.dim();
    let mut ws = SolveWorkspace::with_capacity(dim);
    let u0 = excitation(times.first().copied().unwrap_or(0.0));
    let mut v0 = vec![0.0; dim];
    prepared.solve_dc_into(&u0, &mut v0, &mut ws)?;
    let run = integrate_adaptive(family, v0, &excitation, &times, adaptive)?;
    let coefficients = run
        .states
        .iter()
        .map(|state| system.split_solution(state))
        .collect();
    Ok((
        StochasticSolution::new(system.basis().clone(), times, n, coefficients),
        run.stats,
    ))
}

/// Panel-batched variant of [`run_prepared`]: runs one augmented transient
/// for *several scenarios at once*, where scenario `j` drives the system with
/// the shared excitation rescaled around `anchor` by `scales[j]`. At every
/// time step the scenario states form the columns of one [`Panel`] and
/// advance through a single blocked multi-RHS solve, so the factor is
/// streamed once per step instead of once per scenario per step.
///
/// Column `j` of the panel is bit-identical to a standalone
/// [`run_prepared`] call with the same scaled excitation: a scale of exactly
/// `1.0` copies the shared excitation verbatim (no rescaling arithmetic),
/// mirroring the scalar scenario path.
pub(crate) fn run_prepared_panel(
    prepared: &dyn PreparedSolver,
    system: &GalerkinSystem,
    excitation: impl Fn(f64) -> Vec<f64>,
    anchor: Option<&[f64]>,
    scales: &[f64],
    times: Vec<f64>,
    method: IntegrationMethod,
) -> Result<Vec<StochasticSolution>> {
    let n = system.node_count();
    let dim = system.dim();
    let k = scales.len();
    let mut ws = SolveWorkspace::with_capacity(dim * k);

    // Resolve the anchor once up front: scaled scenarios without one are a
    // caller error, reported before any factorisation work is spent.
    let anchor = match anchor {
        Some(anchor) => anchor,
        None if scales.iter().all(|&s| s == 1.0) => &[][..],
        None => {
            return Err(OperaError::InvalidOptions {
                reason: "scaled scenarios need an anchor excitation to rescale around".to_string(),
            })
        }
    };

    // Column builder: the shared excitation, rescaled per scenario.
    let fill = |u: &[f64], panel: &mut Panel| {
        for (j, &scale) in scales.iter().enumerate() {
            let col = panel.col_mut(j);
            col.copy_from_slice(u);
            if scale != 1.0 {
                rescale_around_anchor(col, anchor, scale);
            }
        }
    };

    let u0 = excitation(0.0);
    let mut u_prev = Panel::zeros(dim, k);
    fill(&u0, &mut u_prev);
    let mut state = Panel::zeros(dim, k);
    prepared.solve_dc_panel(&u_prev, &mut state, &mut ws)?;

    let mut coefficients: Vec<Vec<Vec<Vec<f64>>>> = (0..k)
        .map(|j| {
            let mut per_scenario = Vec::with_capacity(times.len());
            per_scenario.push(system.split_solution(state.col(j)));
            per_scenario
        })
        .collect();

    let mut u_next = Panel::zeros(dim, k);
    let mut next = Panel::zeros(dim, k);
    let two_stage = method == IntegrationMethod::TrBdf2;
    // TR-BDF2 mid-stage excitation and state panels (zero columns for the
    // single-stage schemes, so they cost nothing).
    let cols_mid = if two_stage { k } else { 0 };
    let mut u_mid = Panel::zeros(dim, cols_mid);
    let mut stage = Panel::zeros(dim, cols_mid);
    let mut t_prev = times[0];
    let stepping = opera_trace::span("transient.stepping");
    for &t in &times[1..] {
        opera_trace::count("transient.steps", 1);
        let u = excitation(t);
        fill(&u, &mut u_next);
        if two_stage {
            let um = excitation(t_prev + TR_BDF2_GAMMA * (t - t_prev));
            fill(&um, &mut u_mid);
            prepared.step_tr_bdf2_panel_into(
                &state, &u_prev, &u_mid, &u_next, &mut stage, &mut next, &mut ws,
            )?;
        } else {
            prepared.step_panel_into(&state, &u_prev, &u_next, &mut next, &mut ws)?;
        }
        for (j, per_scenario) in coefficients.iter_mut().enumerate() {
            per_scenario.push(system.split_solution(next.col(j)));
        }
        std::mem::swap(&mut state, &mut next);
        std::mem::swap(&mut u_prev, &mut u_next);
        t_prev = t;
    }
    drop(stepping);

    Ok(coefficients
        .into_iter()
        .map(|per_scenario| {
            StochasticSolution::new(system.basis().clone(), times.clone(), n, per_scenario)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::LeftLookingLu;
    use crate::transient::{solve_transient, TransientOptions};
    use opera_grid::GridSpec;
    use opera_variation::{StochasticGridModel, VariationSpec};

    fn small_setup() -> (opera_grid::PowerGrid, StochasticGridModel) {
        let grid = GridSpec::small_test(120).with_seed(9).build().unwrap();
        let model =
            StochasticGridModel::inter_die(&grid, &VariationSpec::paper_defaults()).unwrap();
        (grid, model)
    }

    #[test]
    fn zero_variation_reduces_to_deterministic_transient() {
        let grid = GridSpec::small_test(90).with_seed(4).build().unwrap();
        let model = StochasticGridModel::inter_die(&grid, &VariationSpec::none()).unwrap();
        let topts = TransientOptions::new(0.1e-9, 1.0e-9);
        let opera = solve(&model, &OperaOptions::order2(topts)).unwrap();
        let det = solve_transient(
            &grid.conductance_matrix(),
            &grid.capacitance_matrix(),
            |t| grid.excitation(t),
            &topts,
        )
        .unwrap();
        for k in 0..opera.times().len() {
            for n in 0..grid.node_count() {
                assert!(
                    (opera.mean_at(k, n) - det.state_at(k)[n]).abs() < 1e-9,
                    "mean differs at time {k}, node {n}"
                );
                assert!(opera.std_dev_at(k, n) < 1e-9);
            }
        }
    }

    #[test]
    fn variation_produces_nonzero_spread_at_loaded_nodes() {
        let (grid, model) = small_setup();
        let opts = OperaOptions::order2(TransientOptions::new(0.1e-9, 1.0e-9));
        let sol = solve(&model, &opts).unwrap();
        let (node, k, drop) = sol.worst_mean_drop(grid.vdd());
        assert!(drop > 0.0);
        let sigma = sol.std_dev_at(k, node);
        assert!(sigma > 0.0, "expected nonzero spread at the worst node");
        // The ±3σ spread should be a sizeable fraction of the nominal drop
        // (the paper reports ≈ ±35 %), certainly above 5 % for these settings.
        assert!(3.0 * sigma / drop > 0.05, "3σ/µ0 = {}", 3.0 * sigma / drop);
    }

    #[test]
    fn mean_is_close_to_nominal_voltage() {
        // Paper: "the mean voltage drops ... with variations was more or less
        // the same as the nominal voltage drops without variations".
        let (grid, model) = small_setup();
        let topts = TransientOptions::new(0.1e-9, 1.0e-9);
        let sol = solve(&model, &OperaOptions::order2(topts)).unwrap();
        let det = solve_transient(
            &grid.conductance_matrix(),
            &grid.capacitance_matrix(),
            |t| grid.excitation(t),
            &topts,
        )
        .unwrap();
        let (node, k, _) = sol.worst_mean_drop(grid.vdd());
        let diff = (sol.mean_at(k, node) - det.state_at(k)[node]).abs();
        assert!(
            diff / grid.vdd() < 0.01,
            "mean shift {diff} is larger than 1 % of VDD"
        );
    }

    #[test]
    fn node_series_matches_solution_statistics() {
        let (_grid, model) = small_setup();
        let sol = solve(
            &model,
            &OperaOptions::order2(TransientOptions::new(0.2e-9, 1.0e-9)),
        )
        .unwrap();
        let k = sol.times().len() - 1;
        let series = sol.node_series(k, 3).unwrap();
        assert!((series.mean() - sol.mean_at(k, 3)).abs() < 1e-14);
        assert!((series.variance() - sol.variance_at(k, 3)).abs() < 1e-16);
    }

    #[test]
    fn order_one_and_two_agree_on_the_mean_to_first_order() {
        let (_grid, model) = small_setup();
        let topts = TransientOptions::new(0.2e-9, 1.0e-9);
        let sol1 = solve(&model, &OperaOptions::with_order(1, topts)).unwrap();
        let sol2 = solve(&model, &OperaOptions::order2(topts)).unwrap();
        let k = sol1.times().len() - 1;
        for n in (0..model.node_count()).step_by(7) {
            let d = (sol1.mean_at(k, n) - sol2.mean_at(k, n)).abs();
            assert!(d < 5e-4, "order-1 and order-2 means differ by {d}");
        }
    }

    #[test]
    fn invalid_options_are_rejected() {
        let (_grid, model) = small_setup();
        let bad = OperaOptions::with_order(0, TransientOptions::new(0.1e-9, 1.0e-9));
        assert!(matches!(
            solve(&model, &bad),
            Err(OperaError::InvalidOptions { .. })
        ));
        let bad_cg = OperaOptions::order2(TransientOptions::new(0.1e-9, 1.0e-9)).with_solver(
            Arc::new(BlockJacobiCg {
                tolerance: 0.0,
                max_iterations: 10,
            }),
        );
        assert!(bad_cg.validate().is_err());
    }

    #[test]
    fn default_solver_is_direct_cholesky() {
        let opts = OperaOptions::order2(TransientOptions::new(0.1e-9, 1.0e-9));
        assert_eq!(opts.solver.name(), crate::solver::DIRECT_CHOLESKY);
        let iterative = opts.clone().with_iterative_solver();
        assert_eq!(iterative.solver.name(), crate::solver::BLOCK_JACOBI_CG);
    }

    #[test]
    fn iterative_solver_matches_direct_solver_with_trapezoidal_integration() {
        // Exercises the trapezoidal branch of the iterative stepping code.
        let (grid, model) = small_setup();
        let topts = TransientOptions {
            time_step: 0.1e-9,
            end_time: 1.0e-9,
            method: crate::transient::IntegrationMethod::Trapezoidal,
        };
        let direct = solve(&model, &OperaOptions::order2(topts)).unwrap();
        let iterative =
            solve(&model, &OperaOptions::order2(topts).with_iterative_solver()).unwrap();
        let (node, k, _) = direct.worst_mean_drop(grid.vdd());
        assert!((direct.mean_at(k, node) - iterative.mean_at(k, node)).abs() < 1e-7 * grid.vdd());
        assert!(
            (direct.std_dev_at(k, node) - iterative.std_dev_at(k, node)).abs() < 1e-6 * grid.vdd()
        );
    }

    #[test]
    fn left_looking_lu_backend_matches_direct_cholesky_exactly_enough() {
        let (grid, model) = small_setup();
        let topts = TransientOptions::new(0.2e-9, 1.0e-9);
        let direct = solve(&model, &OperaOptions::order2(topts)).unwrap();
        let lu = solve(
            &model,
            &OperaOptions::order2(topts).with_solver(Arc::new(LeftLookingLu)),
        )
        .unwrap();
        let (node, k, _) = direct.worst_mean_drop(grid.vdd());
        assert!((direct.mean_at(k, node) - lu.mean_at(k, node)).abs() < 1e-9 * grid.vdd());
        assert!((direct.std_dev_at(k, node) - lu.std_dev_at(k, node)).abs() < 1e-9 * grid.vdd());
    }

    #[test]
    fn iterative_solver_matches_direct_solver() {
        let (grid, model) = small_setup();
        let topts = TransientOptions::new(0.1e-9, 1.0e-9);
        let direct = solve(&model, &OperaOptions::order2(topts)).unwrap();
        let iterative =
            solve(&model, &OperaOptions::order2(topts).with_iterative_solver()).unwrap();
        for k in (0..direct.times().len()).step_by(3) {
            for n in (0..direct.node_count()).step_by(9) {
                assert!(
                    (direct.mean_at(k, n) - iterative.mean_at(k, n)).abs() < 1e-7 * grid.vdd(),
                    "mean differs at ({k}, {n})"
                );
                assert!(
                    (direct.std_dev_at(k, n) - iterative.std_dev_at(k, n)).abs()
                        < 1e-6 * grid.vdd(),
                    "sigma differs at ({k}, {n})"
                );
            }
        }
    }
}
