//! Assembly of the spectral (Galerkin) augmented system.
//!
//! Projecting the truncation error of the expansion onto every basis function
//! (paper Eq. 10/17) turns the stochastic MNA equation into one large
//! deterministic block system:
//!
//! ```text
//! G̃[i][j] = ⟨ψ_i ψ_j⟩ G_a + Σ_d ⟨ξ_d ψ_i ψ_j⟩ G_d        (blocks of size n×n)
//! C̃[i][j] = ⟨ψ_i ψ_j⟩ C_a + Σ_d ⟨ξ_d ψ_i ψ_j⟩ C_d
//! Ũ_i(t)  = ⟨ψ_i⟩      u_a(t) + Σ_d ⟨ξ_d ψ_i⟩      u_d(t)
//! ```
//!
//! For the two-variable order-2 Hermite basis this reproduces exactly the
//! 6×6 block matrices of paper Eqs. (20)–(22); the unit tests check this
//! structure literally.

use opera_pce::{GalerkinCoupling, OrthogonalBasis};
use opera_sparse::{CsrMatrix, TripletMatrix};
use opera_variation::StochasticGridModel;

use crate::{OperaError, Result};

/// The assembled Galerkin system for a stochastic grid model and basis.
#[derive(Debug, Clone)]
pub struct GalerkinSystem {
    basis: OrthogonalBasis,
    coupling: GalerkinCoupling,
    node_count: usize,
    g_hat: CsrMatrix,
    c_hat: CsrMatrix,
}

impl GalerkinSystem {
    /// Assembles the augmented matrices for the given model and basis.
    ///
    /// # Errors
    ///
    /// Returns [`OperaError::InvalidOptions`] if the basis variable count does
    /// not match the model, and propagates numerical errors.
    pub fn assemble(model: &StochasticGridModel, basis: &OrthogonalBasis) -> Result<Self> {
        let _span = opera_trace::span("galerkin.assemble");
        if basis.n_vars() != model.n_vars() {
            return Err(OperaError::InvalidOptions {
                reason: format!(
                    "basis has {} variables but the model has {}",
                    basis.n_vars(),
                    model.n_vars()
                ),
            });
        }
        let coupling = GalerkinCoupling::new(basis)?;
        let n = model.node_count();
        let size = basis.len();

        let g_hat = assemble_block_matrix(
            n,
            size,
            &coupling,
            model.nominal_conductance(),
            (0..model.n_vars())
                .map(|d| model.conductance_perturbation(d))
                .collect::<Vec<_>>()
                .as_slice(),
        );
        let c_hat = assemble_block_matrix(
            n,
            size,
            &coupling,
            model.nominal_capacitance(),
            (0..model.n_vars())
                .map(|d| model.capacitance_perturbation(d))
                .collect::<Vec<_>>()
                .as_slice(),
        );
        Ok(GalerkinSystem {
            basis: basis.clone(),
            coupling,
            node_count: n,
            g_hat,
            c_hat,
        })
    }

    /// The basis the system was assembled for.
    pub fn basis(&self) -> &OrthogonalBasis {
        &self.basis
    }

    /// The precomputed Galerkin coupling tensors.
    pub fn coupling(&self) -> &GalerkinCoupling {
        &self.coupling
    }

    /// Number of grid nodes `n`.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of basis functions `N + 1`.
    pub fn basis_size(&self) -> usize {
        self.basis.len()
    }

    /// Total number of unknowns `(N + 1)·n`.
    pub fn dim(&self) -> usize {
        self.node_count * self.basis.len()
    }

    /// The augmented conductance matrix `G̃`.
    pub fn conductance(&self) -> &CsrMatrix {
        &self.g_hat
    }

    /// The augmented capacitance matrix `C̃`.
    pub fn capacitance(&self) -> &CsrMatrix {
        &self.c_hat
    }

    /// Assembles the augmented excitation `Ũ(t)` from the model: block `i`
    /// receives `⟨ψ_i⟩ u_a(t) + Σ_d ⟨ξ_d ψ_i⟩ u_d(t)`.
    pub fn excitation(&self, model: &StochasticGridModel, t: f64) -> Vec<f64> {
        let n = self.node_count;
        let size = self.basis.len();
        let mut u_hat = vec![0.0; n * size];
        // ⟨ψ_i⟩ is nonzero only for i = 0 where it equals 1 (ψ₀ ≡ 1).
        let u_a = model.excitation_nominal(t);
        u_hat[..n].copy_from_slice(&u_a);
        for d in 0..model.n_vars() {
            let u_d = model.excitation_perturbation(d, t);
            if u_d.iter().all(|&v| v == 0.0) {
                continue;
            }
            for i in 0..size {
                // ⟨ξ_d ψ_i⟩ = ⟨ξ_d ψ_i ψ_0⟩.
                let w = self.coupling.linear(d, i, 0);
                if w == 0.0 {
                    continue;
                }
                let block = &mut u_hat[i * n..(i + 1) * n];
                for (b, v) in block.iter_mut().zip(&u_d) {
                    *b += w * v;
                }
            }
        }
        u_hat
    }

    /// Splits a stacked augmented solution vector into per-basis-function
    /// coefficient vectors (each of length `node_count`).
    pub fn split_solution(&self, stacked: &[f64]) -> Vec<Vec<f64>> {
        assert_eq!(
            stacked.len(),
            self.dim(),
            "stacked solution has wrong length"
        );
        let n = self.node_count;
        (0..self.basis.len())
            .map(|i| stacked[i * n..(i + 1) * n].to_vec())
            .collect()
    }
}

/// Assembles `Σ_ij block(i, j) ⊗ entries` where
/// `block(i, j) = ⟨ψ_i ψ_j⟩ A_nominal + Σ_d ⟨ξ_d ψ_i ψ_j⟩ A_d`.
fn assemble_block_matrix(
    n: usize,
    size: usize,
    coupling: &GalerkinCoupling,
    nominal: &CsrMatrix,
    perturbations: &[&CsrMatrix],
) -> CsrMatrix {
    // Estimate capacity: the diagonal blocks hold the nominal matrix and each
    // linear coupling adds a perturbation-sized block.
    let mut capacity = size * nominal.nnz();
    for p in perturbations {
        capacity += 2 * size * p.nnz();
    }
    let mut t = TripletMatrix::with_capacity(n * size, n * size, capacity);
    for i in 0..size {
        for j in 0..size {
            // Mass term ⟨ψ_i ψ_j⟩ = δ_ij ⟨ψ_i²⟩.
            if i == j {
                let w = coupling.norm_squared(i);
                for (r, c, v) in nominal.iter() {
                    t.push(i * n + r, j * n + c, w * v);
                }
            }
            for (d, pert) in perturbations.iter().enumerate() {
                if pert.nnz() == 0 {
                    continue;
                }
                let w = coupling.linear(d, i, j);
                if w == 0.0 {
                    continue;
                }
                for (r, c, v) in pert.iter() {
                    t.push(i * n + r, j * n + c, w * v);
                }
            }
        }
    }
    t.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use opera_grid::GridSpec;
    use opera_pce::PolynomialFamily;
    use opera_variation::{StochasticGridModel, VariationSpec};

    fn model_and_basis() -> (StochasticGridModel, OrthogonalBasis) {
        let grid = GridSpec::small_test(60).with_seed(2).build().unwrap();
        let model =
            StochasticGridModel::inter_die(&grid, &VariationSpec::paper_defaults()).unwrap();
        let basis = OrthogonalBasis::total_order(PolynomialFamily::Hermite, 2, 2).unwrap();
        (model, basis)
    }

    #[test]
    fn augmented_dimensions_are_basis_times_nodes() {
        let (model, basis) = model_and_basis();
        let sys = GalerkinSystem::assemble(&model, &basis).unwrap();
        assert_eq!(sys.basis_size(), 6);
        assert_eq!(sys.dim(), 6 * model.node_count());
        assert_eq!(sys.conductance().nrows(), sys.dim());
        assert_eq!(sys.capacitance().nrows(), sys.dim());
    }

    #[test]
    fn augmented_conductance_is_symmetric() {
        let (model, basis) = model_and_basis();
        let sys = GalerkinSystem::assemble(&model, &basis).unwrap();
        let scale = sys.conductance().frobenius_norm();
        assert!(sys.conductance().is_symmetric(1e-10 * scale));
        let cscale = sys.capacitance().frobenius_norm();
        assert!(sys.capacitance().is_symmetric(1e-10 * cscale));
    }

    /// Checks the literal block pattern of paper Eq. (20): with blocks labeled
    /// by the basis index pair (i, j), the Ga blocks sit on the diagonal
    /// scaled by ⟨ψ_i²⟩ = [1,1,1,2,1,2] and the Gg blocks follow the ξ_G
    /// coupling pattern.
    #[test]
    fn block_structure_matches_paper_equation_20() {
        let (model, basis) = model_and_basis();
        let sys = GalerkinSystem::assemble(&model, &basis).unwrap();
        let n = model.node_count();
        let ga = model.nominal_conductance();
        let gg = model.conductance_perturbation(0);
        // Pick a representative off-diagonal entry of Ga/Gg to probe blocks.
        let (probe_r, probe_c, ga_val) = ga
            .iter()
            .find(|&(r, c, _)| r != c)
            .expect("grid has off-diagonal entries");
        let gg_val = gg.get(probe_r, probe_c);
        let g_hat = sys.conductance();
        let norms = [1.0, 1.0, 1.0, 2.0, 1.0, 2.0];
        #[rustfmt::skip]
        let xi_g_coupling: [[f64; 6]; 6] = [
            [0.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0, 2.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, 0.0, 1.0, 0.0],
            [0.0, 2.0, 0.0, 0.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        ];
        #[allow(clippy::needless_range_loop)] // (i, j) index the expected block matrix
        for i in 0..6 {
            for j in 0..6 {
                let expected =
                    if i == j { norms[i] * ga_val } else { 0.0 } + xi_g_coupling[i][j] * gg_val;
                let got = g_hat.get(i * n + probe_r, j * n + probe_c);
                assert!(
                    (got - expected).abs() < 1e-10 * ga_val.abs().max(1.0),
                    "block ({i}, {j}): got {got}, expected {expected}"
                );
            }
        }
    }

    /// The capacitance blocks must follow paper Eq. (21): Ca on the scaled
    /// diagonal and Cc following the ξ_L coupling pattern.
    #[test]
    fn block_structure_matches_paper_equation_21() {
        let (model, basis) = model_and_basis();
        let sys = GalerkinSystem::assemble(&model, &basis).unwrap();
        let n = model.node_count();
        let ca = model.nominal_capacitance();
        let cc = model.capacitance_perturbation(1);
        let probe = 0; // capacitance matrices are diagonal
        let ca_val = ca.get(probe, probe);
        let cc_val = cc.get(probe, probe);
        assert!(ca_val > 0.0);
        let norms = [1.0, 1.0, 1.0, 2.0, 1.0, 2.0];
        #[rustfmt::skip]
        let xi_l_coupling: [[f64; 6]; 6] = [
            [0.0, 0.0, 1.0, 0.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, 0.0, 1.0, 0.0],
            [1.0, 0.0, 0.0, 0.0, 0.0, 2.0],
            [0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            [0.0, 0.0, 2.0, 0.0, 0.0, 0.0],
        ];
        let c_hat = sys.capacitance();
        #[allow(clippy::needless_range_loop)] // (i, j) index the expected block matrix
        for i in 0..6 {
            for j in 0..6 {
                let expected =
                    if i == j { norms[i] * ca_val } else { 0.0 } + xi_l_coupling[i][j] * cc_val;
                let got = c_hat.get(i * n + probe, j * n + probe);
                assert!(
                    (got - expected).abs() < 1e-12 * ca_val.max(1e-18),
                    "block ({i}, {j}): got {got}, expected {expected}"
                );
            }
        }
    }

    /// The excitation must follow paper Eq. (22): only the blocks coupled to
    /// ψ₀, ψ₁ (ξ_G) and ψ₂ (ξ_L) are nonzero.
    #[test]
    fn excitation_matches_paper_equation_22() {
        let (model, basis) = model_and_basis();
        let sys = GalerkinSystem::assemble(&model, &basis).unwrap();
        let n = model.node_count();
        let t = 0.4e-9;
        let u_hat = sys.excitation(&model, t);
        assert_eq!(u_hat.len(), 6 * n);
        // Block 0 = nominal excitation.
        let u_a = model.excitation_nominal(t);
        for (a, b) in u_hat[..n].iter().zip(&u_a) {
            assert!((a - b).abs() < 1e-15);
        }
        // Block 1 = u_G(t), block 2 = u_L(t).
        let u_g = model.excitation_perturbation(0, t);
        let u_l = model.excitation_perturbation(1, t);
        for k in 0..n {
            assert!((u_hat[n + k] - u_g[k]).abs() < 1e-15);
            assert!((u_hat[2 * n + k] - u_l[k]).abs() < 1e-15);
        }
        // Higher-order blocks are zero for a first-order input model.
        assert!(u_hat[3 * n..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn excitation_without_pad_variation_has_zero_xi_g_block_at_quiescence() {
        // With pads held fixed, u_G(t) vanishes entirely and u_L(t) vanishes
        // whenever no drain current flows (t = 0), so only block 0 of Ũ(0)
        // is nonzero.
        let grid = GridSpec::small_test(60).with_seed(6).build().unwrap();
        let mut spec = VariationSpec::paper_defaults();
        spec.include_pad_variation = false;
        let model = StochasticGridModel::inter_die(&grid, &spec).unwrap();
        let basis = OrthogonalBasis::total_order(PolynomialFamily::Hermite, 2, 2).unwrap();
        let sys = GalerkinSystem::assemble(&model, &basis).unwrap();
        let n = model.node_count();
        let u0 = sys.excitation(&model, 0.0);
        assert!(u0[..n].iter().any(|&v| v != 0.0), "pad injection missing");
        assert!(u0[n..].iter().all(|&v| v == 0.0));
        // At a time with switching current the ξ_L block becomes active while
        // the ξ_G block stays zero.
        let u = sys.excitation(&model, 0.4e-9);
        assert!(u[n..2 * n].iter().all(|&v| v == 0.0));
        assert!(u[2 * n..3 * n].iter().any(|&v| v != 0.0));
    }

    #[test]
    fn mismatched_basis_is_rejected() {
        let (model, _) = model_and_basis();
        let wrong = OrthogonalBasis::total_order(PolynomialFamily::Hermite, 3, 2).unwrap();
        assert!(matches!(
            GalerkinSystem::assemble(&model, &wrong),
            Err(OperaError::InvalidOptions { .. })
        ));
    }

    #[test]
    fn split_solution_partitions_the_stacked_vector() {
        let (model, basis) = model_and_basis();
        let sys = GalerkinSystem::assemble(&model, &basis).unwrap();
        let stacked: Vec<f64> = (0..sys.dim()).map(|k| k as f64).collect();
        let parts = sys.split_solution(&stacked);
        assert_eq!(parts.len(), 6);
        assert_eq!(parts[0][0], 0.0);
        assert_eq!(parts[1][0], model.node_count() as f64);
    }
}
