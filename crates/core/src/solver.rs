//! Pluggable solver backends for the augmented Galerkin system.
//!
//! The OPERA pipeline splits one stochastic transient analysis into two
//! phases with very different costs:
//!
//! 1. **prepare** — symbolic + numeric factorisation (or preconditioner
//!    construction) for a given [`GalerkinSystem`] and time step, and
//! 2. **step** — one implicit time step per transient point, reusing the
//!    prepared factors.
//!
//! [`SolverBackend`] captures phase 1 and returns a [`PreparedSolver`] that
//! captures phase 2. The split is what lets the
//! [`OperaEngine`](crate::engine::OperaEngine) amortise a single preparation
//! over arbitrarily many scenarios, and it makes alternative solvers a
//! *registration* ([`register_backend`]) instead of a match-arm edit in the
//! transient loop.
//!
//! Three backends ship with the crate:
//!
//! * [`DirectCholesky`] — sparse Cholesky of the augmented companion matrix,
//!   factored once and reused for every step (the paper's default; falls back
//!   to LU if the matrix is not numerically SPD).
//! * [`BlockJacobiCg`] — conjugate gradient on the augmented system with a
//!   block-Jacobi preconditioner built from a *single* factorisation of the
//!   nominal companion matrix (the paper's §5.2 "iterative block solver with
//!   appropriate pre-conditioner" remark for very large grids).
//! * [`LeftLookingLu`] — left-looking sparse LU with partial pivoting, the
//!   fallback of choice when large variation magnitudes push the augmented
//!   matrix away from positive definiteness.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use opera_sparse::{CholeskyFactor, CsrMatrix, MatrixFactor, Panel, SolveWorkspace};
use opera_variation::StochasticGridModel;

use crate::galerkin::GalerkinSystem;
use crate::transient::{
    companion_scale, CompanionFamily, CompanionSystem, IntegrationMethod, TransientOptions,
    TR_BDF2_W_MID, TR_BDF2_W_OLD,
};
use crate::{OperaError, Result};

/// A strategy for solving the augmented Galerkin system.
///
/// Implementations perform all one-time work (factorisations, preconditioner
/// setup) in [`SolverBackend::prepare`] and return a [`PreparedSolver`] that
/// owns the factors and can be reused for every time step — and, through the
/// engine, for every scenario that shares the system and time step.
pub trait SolverBackend: fmt::Debug + Send + Sync {
    /// Stable identifier of the backend (the name it is registered under).
    fn name(&self) -> &str;

    /// Validates the backend's own parameters.
    ///
    /// # Errors
    ///
    /// Returns [`OperaError::InvalidOptions`] for inconsistent parameters.
    fn validate(&self) -> Result<()> {
        Ok(())
    }

    /// Performs the one-time setup for `system` and the given transient
    /// configuration: factorisations of the DC and companion matrices, or the
    /// equivalent preconditioner construction.
    ///
    /// # Errors
    ///
    /// Propagates factorisation errors.
    fn prepare(
        &self,
        model: &StochasticGridModel,
        system: &GalerkinSystem,
        transient: &TransientOptions,
    ) -> Result<Box<dyn PreparedSolver>>;
}

/// The reusable product of [`SolverBackend::prepare`]: owns every factor
/// needed to run an augmented transient and is shareable across threads, so
/// batched scenarios can step it concurrently.
///
/// The required methods are the allocation-free workspace forms
/// ([`solve_dc_into`](PreparedSolver::solve_dc_into) /
/// [`step_into`](PreparedSolver::step_into)): they write into caller-provided
/// buffers and borrow scratch from a [`SolveWorkspace`], so a steady-state
/// transient loop with a warm workspace never touches the allocator (direct
/// backends; iterative backends may allocate internally). The panel forms
/// step several independent right-hand-side columns through **one** blocked
/// multi-RHS solve; the provided defaults fall back to column-at-a-time
/// stepping, and every implementation must keep each panel column
/// bit-identical to the scalar form on that column.
pub trait PreparedSolver: Send + Sync {
    /// Solves the DC system `G̃·a(0) = Ũ(0)` into `out` for the initial
    /// condition.
    ///
    /// # Errors
    ///
    /// Propagates solver errors (iterative backends may fail to converge).
    fn solve_dc_into(&self, u0: &[f64], out: &mut [f64], ws: &mut SolveWorkspace) -> Result<()>;

    /// Advances one implicit time step into `out`: given the state at `t_k`
    /// and the excitations at `t_k` and `t_{k+1}`, computes the state at
    /// `t_{k+1}`.
    ///
    /// # Errors
    ///
    /// Propagates solver errors (iterative backends may fail to converge).
    fn step_into(
        &self,
        state: &[f64],
        u_prev: &[f64],
        u_next: &[f64],
        out: &mut [f64],
        ws: &mut SolveWorkspace,
    ) -> Result<()>;

    /// Solves the DC system for every column of a panel of initial
    /// excitations. The default solves column by column; direct backends
    /// override it with one blocked panel solve.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    fn solve_dc_panel(&self, u0: &Panel, out: &mut Panel, ws: &mut SolveWorkspace) -> Result<()> {
        assert_eq!(u0.ncols(), out.ncols(), "panel column count mismatch");
        for j in 0..u0.ncols() {
            self.solve_dc_into(u0.col(j), out.col_mut(j), ws)?;
        }
        Ok(())
    }

    /// Advances one implicit time step for a panel of independent states
    /// (column `j` of `out` steps column `j` of `state`). The default steps
    /// column by column; direct backends override it with one blocked panel
    /// solve.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    fn step_panel_into(
        &self,
        state: &Panel,
        u_prev: &Panel,
        u_next: &Panel,
        out: &mut Panel,
        ws: &mut SolveWorkspace,
    ) -> Result<()> {
        assert_eq!(state.ncols(), out.ncols(), "panel column count mismatch");
        for j in 0..state.ncols() {
            self.step_into(
                state.col(j),
                u_prev.col(j),
                u_next.col(j),
                out.col_mut(j),
                ws,
            )?;
        }
        Ok(())
    }

    /// Allocating convenience wrapper around
    /// [`solve_dc_into`](PreparedSolver::solve_dc_into).
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    fn solve_dc(&self, u0: &[f64]) -> Result<Vec<f64>> {
        let mut out = vec![0.0; u0.len()];
        self.solve_dc_into(u0, &mut out, &mut SolveWorkspace::new())?;
        Ok(out)
    }

    /// Allocating convenience wrapper around
    /// [`step_into`](PreparedSolver::step_into).
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    fn step(&self, state: &[f64], u_prev: &[f64], u_next: &[f64]) -> Result<Vec<f64>> {
        let mut out = vec![0.0; state.len()];
        self.step_into(state, u_prev, u_next, &mut out, &mut SolveWorkspace::new())?;
        Ok(out)
    }

    /// Advances one TR-BDF2 composite step into `out`: the trapezoidal stage
    /// over `[t, t + γh]` lands in `stage`, the BDF2 stage over the rest of
    /// the step lands in `out`. `u_mid` is the excitation at `t + γh`.
    ///
    /// The default rejects the call; backends prepared for
    /// [`IntegrationMethod::TrBdf2`] override it.
    ///
    /// # Errors
    ///
    /// Returns [`OperaError::InvalidOptions`] when the backend does not
    /// support TR-BDF2, and propagates solver errors otherwise.
    #[allow(clippy::too_many_arguments)]
    fn step_tr_bdf2_into(
        &self,
        state: &[f64],
        u_prev: &[f64],
        u_mid: &[f64],
        u_next: &[f64],
        stage: &mut [f64],
        out: &mut [f64],
        ws: &mut SolveWorkspace,
    ) -> Result<()> {
        let _ = (state, u_prev, u_mid, u_next, stage, out, ws);
        Err(OperaError::InvalidOptions {
            reason: "this solver backend was not prepared for TR-BDF2 stepping".to_string(),
        })
    }

    /// Advances one TR-BDF2 step for a panel of independent states. The
    /// default steps column by column through
    /// [`step_tr_bdf2_into`](PreparedSolver::step_tr_bdf2_into); direct
    /// backends override it with blocked panel solves.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    #[allow(clippy::too_many_arguments)]
    fn step_tr_bdf2_panel_into(
        &self,
        state: &Panel,
        u_prev: &Panel,
        u_mid: &Panel,
        u_next: &Panel,
        stage: &mut Panel,
        out: &mut Panel,
        ws: &mut SolveWorkspace,
    ) -> Result<()> {
        assert_eq!(state.ncols(), out.ncols(), "panel column count mismatch");
        assert_eq!(stage.ncols(), out.ncols(), "stage panel column mismatch");
        for j in 0..state.ncols() {
            self.step_tr_bdf2_into(
                state.col(j),
                u_prev.col(j),
                u_mid.col(j),
                u_next.col(j),
                stage.col_mut(j),
                out.col_mut(j),
                ws,
            )?;
        }
        Ok(())
    }

    /// The companion-system family behind this solver, when it has one:
    /// direct backends expose it so the adaptive controller can request
    /// numeric-only refactorisations for new step sizes (and so callers can
    /// read the symbolic/refactorisation counters). Iterative backends
    /// return `None`.
    fn companion_family(&self) -> Option<&CompanionFamily> {
        None
    }

    /// Re-prepares this solver for a different fixed time step, reusing
    /// every step-size-independent artifact (the DC factor and the shared
    /// symbolic analysis) and re-running only the numeric companion
    /// factorisation. Returns `Ok(None)` when the backend cannot re-step
    /// cheaply and the caller should run a full prepare.
    ///
    /// # Errors
    ///
    /// Propagates factorisation errors.
    fn with_time_step(&self, time_step: f64) -> Result<Option<Box<dyn PreparedSolver>>> {
        let _ = time_step;
        Ok(None)
    }
}

// --------------------------------------------------------------------------
// Direct backends (Cholesky and left-looking LU).
// --------------------------------------------------------------------------

/// Sparse Cholesky factorisation of the full `(N+1)·n` augmented companion
/// matrix, factored once and reused for every time step. Falls back to
/// left-looking LU if the augmented matrix is not numerically positive
/// definite (use [`LeftLookingLu`] to skip the Cholesky attempt entirely).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DirectCholesky;

/// Left-looking sparse LU with partial pivoting of the augmented companion
/// matrix — for augmented systems that large variation magnitudes have pushed
/// away from positive definiteness, where [`DirectCholesky`]'s first attempt
/// is wasted work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LeftLookingLu;

/// Factors shared by the two direct backends: a DC factor of `G̃`, the
/// companion family (one symbolic analysis for every step size), and the
/// family's factored companion system for the prepared time step.
///
/// The DC factor deliberately keeps its own full factorisation instead of
/// the family's union-pattern analysis: `G̃`'s pattern is a strict subset of
/// `G̃ + C̃`, so factoring it against the union analysis would change fill
/// and break bit-identity with the pre-family behaviour.
struct DirectPrepared {
    dc: Arc<MatrixFactor>,
    family: Arc<CompanionFamily>,
    companion: Arc<CompanionSystem>,
}

impl DirectPrepared {
    fn new(
        dc: MatrixFactor,
        family: CompanionFamily,
        transient: &TransientOptions,
    ) -> Result<Self> {
        let family = Arc::new(family);
        let companion = family.system_for(transient.time_step, transient.method)?;
        Ok(DirectPrepared {
            dc: Arc::new(dc),
            family,
            companion,
        })
    }
}

impl PreparedSolver for DirectPrepared {
    fn solve_dc_into(&self, u0: &[f64], out: &mut [f64], ws: &mut SolveWorkspace) -> Result<()> {
        out.copy_from_slice(u0);
        self.dc.solve_in_place(out, ws);
        Ok(())
    }

    fn step_into(
        &self,
        state: &[f64],
        u_prev: &[f64],
        u_next: &[f64],
        out: &mut [f64],
        ws: &mut SolveWorkspace,
    ) -> Result<()> {
        self.companion.step_into(state, u_prev, u_next, out, ws);
        Ok(())
    }

    fn solve_dc_panel(&self, u0: &Panel, out: &mut Panel, ws: &mut SolveWorkspace) -> Result<()> {
        out.data_mut().copy_from_slice(u0.data());
        self.dc.solve_panel(out, ws);
        Ok(())
    }

    fn step_panel_into(
        &self,
        state: &Panel,
        u_prev: &Panel,
        u_next: &Panel,
        out: &mut Panel,
        ws: &mut SolveWorkspace,
    ) -> Result<()> {
        self.companion
            .step_panel_into(state, u_prev, u_next, out, ws);
        Ok(())
    }

    fn step_tr_bdf2_into(
        &self,
        state: &[f64],
        u_prev: &[f64],
        u_mid: &[f64],
        u_next: &[f64],
        stage: &mut [f64],
        out: &mut [f64],
        ws: &mut SolveWorkspace,
    ) -> Result<()> {
        self.companion
            .step_tr_bdf2_into(state, u_prev, u_mid, u_next, stage, out, ws);
        Ok(())
    }

    fn step_tr_bdf2_panel_into(
        &self,
        state: &Panel,
        u_prev: &Panel,
        u_mid: &Panel,
        u_next: &Panel,
        stage: &mut Panel,
        out: &mut Panel,
        ws: &mut SolveWorkspace,
    ) -> Result<()> {
        self.companion
            .step_tr_bdf2_panel_into(state, u_prev, u_mid, u_next, stage, out, ws);
        Ok(())
    }

    fn companion_family(&self) -> Option<&CompanionFamily> {
        Some(&self.family)
    }

    fn with_time_step(&self, time_step: f64) -> Result<Option<Box<dyn PreparedSolver>>> {
        let companion = self.family.system_for(time_step, self.companion.method())?;
        Ok(Some(Box::new(DirectPrepared {
            dc: Arc::clone(&self.dc),
            family: Arc::clone(&self.family),
            companion,
        })))
    }
}

impl SolverBackend for DirectCholesky {
    fn name(&self) -> &str {
        DIRECT_CHOLESKY
    }

    fn prepare(
        &self,
        _model: &StochasticGridModel,
        system: &GalerkinSystem,
        transient: &TransientOptions,
    ) -> Result<Box<dyn PreparedSolver>> {
        let _span = opera_trace::span("solver.prepare");
        let dc = MatrixFactor::cholesky_or_lu(system.conductance())?;
        let family = CompanionFamily::new(system.conductance(), system.capacitance())?;
        Ok(Box::new(DirectPrepared::new(dc, family, transient)?))
    }
}

impl SolverBackend for LeftLookingLu {
    fn name(&self) -> &str {
        LEFT_LOOKING_LU
    }

    fn prepare(
        &self,
        _model: &StochasticGridModel,
        system: &GalerkinSystem,
        transient: &TransientOptions,
    ) -> Result<Box<dyn PreparedSolver>> {
        let _span = opera_trace::span("solver.prepare");
        let dc = MatrixFactor::lu(system.conductance())?;
        let family = CompanionFamily::with_lu(system.conductance(), system.capacitance())?;
        Ok(Box::new(DirectPrepared::new(dc, family, transient)?))
    }
}

// --------------------------------------------------------------------------
// Block-Jacobi preconditioned CG backend.
// --------------------------------------------------------------------------

/// Conjugate gradient on the augmented system with a block-Jacobi
/// preconditioner built from a *single* factorisation of the nominal
/// companion matrix `G_a + C_a/h` (the diagonal blocks of the augmented
/// matrix are exactly `⟨ψ_i²⟩(G_a + C_a/h)` for symmetric variations). This
/// keeps the OPERA cost close to a single deterministic transient even for
/// very large grids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockJacobiCg {
    /// Relative residual tolerance of the CG iteration.
    pub tolerance: f64,
    /// Maximum CG iterations per solve.
    pub max_iterations: usize,
}

impl Default for BlockJacobiCg {
    fn default() -> Self {
        BlockJacobiCg {
            tolerance: 1e-10,
            max_iterations: 2_000,
        }
    }
}

impl SolverBackend for BlockJacobiCg {
    fn name(&self) -> &str {
        BLOCK_JACOBI_CG
    }

    fn validate(&self) -> Result<()> {
        if self.tolerance <= 0.0 || self.tolerance.is_nan() || self.max_iterations == 0 {
            return Err(OperaError::InvalidOptions {
                reason: "CG tolerance must be positive and max_iterations nonzero".to_string(),
            });
        }
        Ok(())
    }

    fn prepare(
        &self,
        model: &StochasticGridModel,
        system: &GalerkinSystem,
        transient: &TransientOptions,
    ) -> Result<Box<dyn PreparedSolver>> {
        let _span = opera_trace::span("solver.prepare");
        self.validate()?;
        let n = system.node_count();
        let size = system.basis_size();
        let h = transient.time_step;
        // Matches the direct backends' companion matrix for every scheme
        // (TR-BDF2's two stages share the single scale 2/(γh)).
        let c_scale = companion_scale(transient.method, h);

        let inv_norms: Vec<f64> = (0..size)
            .map(|i| 1.0 / system.coupling().norm_squared(i))
            .collect();

        // Augmented companion matrix (for matvecs only — never factored).
        let c_over_h = system.capacitance().scaled(c_scale);
        let a_hat = system.conductance().add_scaled(&c_over_h, 1.0)?;

        // Preconditioners: nominal G (DC start) and nominal companion
        // (stepping) — the only two factorisations, both of nominal size.
        let g_nominal = model.nominal_conductance();
        let nominal_companion =
            g_nominal.add_scaled(&model.nominal_capacitance().scaled(c_scale), 1.0)?;
        let dc_pre = BlockNominalPreconditioner {
            factor: CholeskyFactor::factor(g_nominal)?,
            inv_norms: inv_norms.clone(),
            block_size: n,
        };
        let step_pre = BlockNominalPreconditioner {
            factor: CholeskyFactor::factor(&nominal_companion)?,
            inv_norms,
            block_size: n,
        };

        Ok(Box::new(CgPrepared {
            g_hat: system.conductance().clone(),
            a_hat,
            c_over_h,
            dc_pre,
            step_pre,
            method: transient.method,
            tolerance: self.tolerance,
            max_iterations: self.max_iterations,
            block_size: n,
        }))
    }
}

/// Block-Jacobi preconditioner for the augmented system: every basis block is
/// preconditioned with a shared factorisation of the nominal matrix, scaled
/// by `1 / ⟨ψ_i²⟩`.
struct BlockNominalPreconditioner {
    factor: CholeskyFactor,
    inv_norms: Vec<f64>,
    block_size: usize,
}

impl opera_sparse::cg::Preconditioner for BlockNominalPreconditioner {
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        // The stacked residual is column-major over basis blocks, so it *is*
        // a panel: all blocks go through one blocked multi-RHS solve of the
        // shared nominal factor instead of one scalar solve per block. Each
        // block's values are bit-identical to the per-block path.
        let n = self.block_size;
        let k = r.len() / n;
        let mut panel = Panel::from_vec(n, k, r.to_vec());
        self.factor
            .solve_panel(&mut panel, &mut SolveWorkspace::new());
        let mut z = panel.into_vec();
        for (i, block) in z.chunks_mut(n).enumerate() {
            for v in block {
                *v *= self.inv_norms[i];
            }
        }
        z
    }
}

struct CgPrepared {
    g_hat: CsrMatrix,
    a_hat: CsrMatrix,
    c_over_h: CsrMatrix,
    dc_pre: BlockNominalPreconditioner,
    step_pre: BlockNominalPreconditioner,
    method: IntegrationMethod,
    tolerance: f64,
    max_iterations: usize,
    block_size: usize,
}

impl PreparedSolver for CgPrepared {
    fn solve_dc_into(&self, u0: &[f64], out: &mut [f64], _ws: &mut SolveWorkspace) -> Result<()> {
        // CG on G̃ with the nominal DC solution in block 0 as the guess. The
        // iteration allocates its own vectors; the workspace contract only
        // binds the direct backends.
        let mut guess = vec![0.0; u0.len()];
        let n = self.block_size;
        guess[..n].copy_from_slice(&self.dc_pre.factor.solve(&u0[..n]));
        let x = cg_with_guess(
            &self.g_hat,
            u0,
            &guess,
            &self.dc_pre,
            self.tolerance,
            self.max_iterations,
        )?;
        out.copy_from_slice(&x);
        Ok(())
    }

    fn step_into(
        &self,
        state: &[f64],
        u_prev: &[f64],
        u_next: &[f64],
        out: &mut [f64],
        _ws: &mut SolveWorkspace,
    ) -> Result<()> {
        // Right-hand side of the implicit step.
        let mut rhs = vec![0.0; state.len()];
        match self.method {
            IntegrationMethod::BackwardEuler => {
                self.c_over_h.matvec_into(state, &mut rhs);
                for (r, u) in rhs.iter_mut().zip(u_next) {
                    *r += u;
                }
            }
            IntegrationMethod::Trapezoidal => {
                self.c_over_h.matvec_into(state, &mut rhs);
                self.g_hat.matvec_acc(state, -1.0, &mut rhs);
                for ((r, a), b) in rhs.iter_mut().zip(u_prev).zip(u_next) {
                    *r += a + b;
                }
            }
            IntegrationMethod::TrBdf2 => {
                return Err(OperaError::InvalidOptions {
                    reason: "TR-BDF2 needs the mid-stage excitation: step via step_tr_bdf2_into"
                        .to_string(),
                })
            }
        }
        let x = cg_with_guess(
            &self.a_hat,
            &rhs,
            state,
            &self.step_pre,
            self.tolerance,
            self.max_iterations,
        )?;
        out.copy_from_slice(&x);
        Ok(())
    }

    fn step_tr_bdf2_into(
        &self,
        state: &[f64],
        u_prev: &[f64],
        u_mid: &[f64],
        u_next: &[f64],
        stage: &mut [f64],
        out: &mut [f64],
        _ws: &mut SolveWorkspace,
    ) -> Result<()> {
        if self.method != IntegrationMethod::TrBdf2 {
            return Err(OperaError::InvalidOptions {
                reason: "backend was prepared for a single-stage scheme, not TR-BDF2".to_string(),
            });
        }
        // TR stage: Â v_γ = u_k + u_γ + (2C̃/(γh) − G̃) v_k, with the
        // step-start state as the CG guess.
        let mut rhs = vec![0.0; state.len()];
        self.c_over_h.matvec_into(state, &mut rhs);
        self.g_hat.matvec_acc(state, -1.0, &mut rhs);
        for ((r, a), b) in rhs.iter_mut().zip(u_prev).zip(u_mid) {
            *r += a + b;
        }
        let x = cg_with_guess(
            &self.a_hat,
            &rhs,
            state,
            &self.step_pre,
            self.tolerance,
            self.max_iterations,
        )?;
        stage.copy_from_slice(&x);
        // BDF2 stage: Â v_{k+1} = u_{k+1} + (2C̃/(γh))·(v_γ/(2(1−γ)) −
        // v_k·(1−γ)/2), with the mid state as the guess.
        self.c_over_h.matvec_into(stage, &mut rhs);
        for r in rhs.iter_mut() {
            *r *= TR_BDF2_W_MID;
        }
        self.c_over_h.matvec_acc(state, -TR_BDF2_W_OLD, &mut rhs);
        for (r, u) in rhs.iter_mut().zip(u_next) {
            *r += u;
        }
        let x = cg_with_guess(
            &self.a_hat,
            &rhs,
            stage,
            &self.step_pre,
            self.tolerance,
            self.max_iterations,
        )?;
        out.copy_from_slice(&x);
        Ok(())
    }
}

/// Preconditioned CG with an initial guess: solves `A·x = b` by iterating on
/// the correction `A·δ = b − A·x₀`, with the tolerance rescaled so that the
/// overall relative residual (with respect to `‖b‖`) matches `tolerance`.
fn cg_with_guess(
    a: &CsrMatrix,
    b: &[f64],
    guess: &[f64],
    preconditioner: &BlockNominalPreconditioner,
    tolerance: f64,
    max_iterations: usize,
) -> Result<Vec<f64>> {
    let mut residual = b.to_vec();
    a.matvec_acc(guess, -1.0, &mut residual);
    let norm_b = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    let norm_r = residual.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm_r <= tolerance * norm_b.max(f64::MIN_POSITIVE) {
        return Ok(guess.to_vec());
    }
    let effective_tol = (tolerance * norm_b / norm_r).clamp(1e-14, 0.5);
    let correction = opera_sparse::cg::solve(
        a,
        &residual,
        preconditioner,
        opera_sparse::cg::CgOptions {
            max_iterations,
            tolerance: effective_tol,
        },
    )?;
    Ok(guess
        .iter()
        .zip(&correction.x)
        .map(|(g, d)| g + d)
        .collect())
}

// --------------------------------------------------------------------------
// Backend registry.
// --------------------------------------------------------------------------

/// Registered name of [`DirectCholesky`].
pub const DIRECT_CHOLESKY: &str = "direct-cholesky";
/// Registered name of [`BlockJacobiCg`].
pub const BLOCK_JACOBI_CG: &str = "block-jacobi-cg";
/// Registered name of [`LeftLookingLu`].
pub const LEFT_LOOKING_LU: &str = "left-looking-lu";

type BackendFactory = Arc<dyn Fn() -> Arc<dyn SolverBackend> + Send + Sync>;

fn registry() -> &'static Mutex<BTreeMap<String, BackendFactory>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, BackendFactory>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut map: BTreeMap<String, BackendFactory> = BTreeMap::new();
        map.insert(
            DIRECT_CHOLESKY.to_string(),
            Arc::new(|| Arc::new(DirectCholesky)),
        );
        map.insert(
            BLOCK_JACOBI_CG.to_string(),
            Arc::new(|| Arc::new(BlockJacobiCg::default())),
        );
        map.insert(
            LEFT_LOOKING_LU.to_string(),
            Arc::new(|| Arc::new(LeftLookingLu)),
        );
        Mutex::new(map)
    })
}

/// Registers (or replaces) a backend factory under `name`, making it
/// available to configuration front ends such as
/// [`ExperimentConfig::solver`](crate::analysis::ExperimentConfig::solver).
pub fn register_backend(
    name: &str,
    factory: impl Fn() -> Arc<dyn SolverBackend> + Send + Sync + 'static,
) {
    registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .insert(name.to_string(), Arc::new(factory));
}

/// Instantiates the backend registered under `name`.
///
/// # Errors
///
/// Returns [`OperaError::InvalidOptions`] for unknown names, listing the
/// registered backends.
pub fn backend_by_name(name: &str) -> Result<Arc<dyn SolverBackend>> {
    // Clone the factory out of the registry before invoking it, so factories
    // may themselves consult the registry (e.g. delegating backends) without
    // deadlocking on the mutex.
    let factory = {
        let guard = registry()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match guard.get(name) {
            Some(factory) => Arc::clone(factory),
            None => {
                return Err(OperaError::InvalidOptions {
                    reason: format!(
                        "unknown solver backend {name:?}; registered backends: {}",
                        guard.keys().cloned().collect::<Vec<_>>().join(", ")
                    ),
                })
            }
        }
    };
    Ok(factory())
}

/// Names of all registered backends, sorted.
pub fn available_backends() -> Vec<String> {
    registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .keys()
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use opera_grid::GridSpec;
    use opera_pce::{OrthogonalBasis, PolynomialFamily};
    use opera_variation::{StochasticGridModel, VariationSpec};

    fn prepared_setup() -> (StochasticGridModel, GalerkinSystem, TransientOptions) {
        let grid = GridSpec::small_test(60).with_seed(2).build().unwrap();
        let model =
            StochasticGridModel::inter_die(&grid, &VariationSpec::paper_defaults()).unwrap();
        let basis = OrthogonalBasis::total_order(PolynomialFamily::Hermite, 2, 2).unwrap();
        let system = GalerkinSystem::assemble(&model, &basis).unwrap();
        (model, system, TransientOptions::new(0.2e-9, 1.0e-9))
    }

    #[test]
    fn builtin_backends_are_registered() {
        let names = available_backends();
        for expected in [DIRECT_CHOLESKY, BLOCK_JACOBI_CG, LEFT_LOOKING_LU] {
            assert!(names.iter().any(|n| n == expected), "{expected} missing");
            assert_eq!(backend_by_name(expected).unwrap().name(), expected);
        }
        assert!(matches!(
            backend_by_name("no-such-backend"),
            Err(OperaError::InvalidOptions { .. })
        ));
    }

    #[test]
    fn delegating_factories_may_consult_the_registry() {
        // A factory that itself resolves another backend by name must not
        // deadlock on the registry mutex.
        register_backend("delegating-direct", || {
            backend_by_name(DIRECT_CHOLESKY).expect("builtin backend")
        });
        let backend = backend_by_name("delegating-direct").unwrap();
        assert_eq!(backend.name(), DIRECT_CHOLESKY);
    }

    #[test]
    fn custom_backends_can_be_registered() {
        register_backend("custom-direct", || Arc::new(DirectCholesky));
        let backend = backend_by_name("custom-direct").unwrap();
        // The factory controls the instance, not the name lookup.
        assert_eq!(backend.name(), DIRECT_CHOLESKY);
        assert!(available_backends().contains(&"custom-direct".to_string()));
    }

    #[test]
    fn all_three_backends_agree_on_a_time_step() {
        let (model, system, transient) = prepared_setup();
        let u0 = system.excitation(&model, 0.0);
        let u1 = system.excitation(&model, transient.time_step);
        let mut states = Vec::new();
        for name in [DIRECT_CHOLESKY, LEFT_LOOKING_LU, BLOCK_JACOBI_CG] {
            let backend = backend_by_name(name).unwrap();
            let prepared = backend.prepare(&model, &system, &transient).unwrap();
            let a0 = prepared.solve_dc(&u0).unwrap();
            let a1 = prepared.step(&a0, &u0, &u1).unwrap();
            states.push(a1);
        }
        let scale = states[0]
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()))
            .max(1.0);
        for other in &states[1..] {
            for (a, b) in states[0].iter().zip(other) {
                assert!((a - b).abs() < 1e-7 * scale, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn all_three_backends_agree_on_a_tr_bdf2_step() {
        use crate::transient::TR_BDF2_GAMMA;
        let (model, system, mut transient) = prepared_setup();
        transient.method = IntegrationMethod::TrBdf2;
        let u0 = system.excitation(&model, 0.0);
        let u_mid = system.excitation(&model, TR_BDF2_GAMMA * transient.time_step);
        let u1 = system.excitation(&model, transient.time_step);
        let dim = u0.len();
        let mut states = Vec::new();
        for name in [DIRECT_CHOLESKY, LEFT_LOOKING_LU, BLOCK_JACOBI_CG] {
            let backend = backend_by_name(name).unwrap();
            let prepared = backend.prepare(&model, &system, &transient).unwrap();
            let a0 = prepared.solve_dc(&u0).unwrap();
            let mut stage = vec![0.0; dim];
            let mut a1 = vec![0.0; dim];
            prepared
                .step_tr_bdf2_into(
                    &a0,
                    &u0,
                    &u_mid,
                    &u1,
                    &mut stage,
                    &mut a1,
                    &mut SolveWorkspace::new(),
                )
                .unwrap();
            if name == BLOCK_JACOBI_CG {
                // The single-stage entry must refuse a TR-BDF2 preparation
                // (the direct backends enforce the same contract by panic).
                assert!(prepared.step(&a0, &u0, &u1).is_err());
            }
            states.push(a1);
        }
        let scale = states[0]
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()))
            .max(1.0);
        for other in &states[1..] {
            for (a, b) in states[0].iter().zip(other) {
                assert!((a - b).abs() < 1e-7 * scale, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn with_time_step_reuses_the_symbolic_analysis() {
        let (model, system, transient) = prepared_setup();
        let prepared = DirectCholesky.prepare(&model, &system, &transient).unwrap();
        let family_analyses = prepared
            .companion_family()
            .expect("direct backends expose their family")
            .symbolic_analysis_count();
        assert_eq!(family_analyses, 1);
        let refactors_before = prepared.companion_family().unwrap().refactorization_count();
        let restepped = prepared
            .with_time_step(transient.time_step / 2.0)
            .unwrap()
            .expect("direct backends re-step cheaply");
        let family = restepped.companion_family().unwrap();
        // One numeric refactorisation, zero new symbolic analyses.
        assert_eq!(family.symbolic_analysis_count(), 1);
        assert_eq!(family.refactorization_count(), refactors_before + 1);
        // The re-stepped solver matches a from-scratch preparation bitwise.
        let mut halved = transient;
        halved.time_step /= 2.0;
        let fresh = DirectCholesky.prepare(&model, &system, &halved).unwrap();
        let u0 = system.excitation(&model, 0.0);
        let u1 = system.excitation(&model, halved.time_step);
        let a0 = fresh.solve_dc(&u0).unwrap();
        let via_fresh = fresh.step(&a0, &u0, &u1).unwrap();
        let via_restep = restepped.step(&a0, &u0, &u1).unwrap();
        for (x, y) in via_fresh.iter().zip(&via_restep) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // The CG backend opts out of cheap re-stepping.
        let cg = BlockJacobiCg::default()
            .prepare(&model, &system, &transient)
            .unwrap();
        assert!(cg.with_time_step(transient.time_step).unwrap().is_none());
        assert!(cg.companion_family().is_none());
    }

    #[test]
    fn invalid_cg_parameters_are_rejected() {
        let bad = BlockJacobiCg {
            tolerance: 0.0,
            max_iterations: 10,
        };
        assert!(bad.validate().is_err());
        let bad = BlockJacobiCg {
            tolerance: 1e-10,
            max_iterations: 0,
        };
        assert!(bad.validate().is_err());
        assert!(BlockJacobiCg::default().validate().is_ok());
    }
}
