//! Parallel-execution control for the embarrassingly parallel parts of the
//! reproduction: the Monte Carlo sample loop and the `N + 1` independent
//! solves of the Section 5.1 special case.
//!
//! The knob is deliberately *statistics-neutral*: every Monte Carlo sample
//! draws from its own deterministically derived RNG stream (see
//! [`sample_seed`]) and results are accumulated in sample order, so the mean
//! and variance are bit-identical for any thread count, including the serial
//! path. Parallelism only changes wall-clock time.

use crate::{OperaError, Result};

/// How many worker threads the sample/solve loops may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// One thread, no pool. The reference path.
    Serial,
    /// All cores the machine reports.
    #[default]
    Max,
    /// A fixed worker count (values of `0` behave like [`Parallelism::Max`]).
    Threads(usize),
}

impl Parallelism {
    /// The worker count this setting resolves to on the current machine.
    pub fn thread_count(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Max | Parallelism::Threads(0) => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            Parallelism::Threads(n) => n,
        }
    }

    /// Runs `op` with this parallelism installed: `rayon` parallel iterators
    /// inside `op` use at most [`Parallelism::thread_count`] workers.
    ///
    /// # Errors
    ///
    /// Returns [`OperaError::InvalidOptions`] if the thread pool cannot be
    /// built.
    pub fn install<R>(self, op: impl FnOnce() -> R) -> Result<R> {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(self.thread_count())
            .build()
            .map_err(|e| OperaError::InvalidOptions {
                reason: format!("failed to build thread pool: {e}"),
            })?;
        Ok(pool.install(|| {
            // Recorded from inside the pool, so the gauges report what the
            // pool *actually* started with — the instrumentation that would
            // have caught the PR-5 thread sweep silently running on 1 core.
            opera_trace::gauge_set("threads.available", Parallelism::Max.thread_count() as f64);
            opera_trace::gauge_set("threads.installed", rayon::current_num_threads() as f64);
            op()
        }))
    }

    /// Parses a thread-count string (as used by the `OPERA_BENCH_THREADS`
    /// environment variable): `"1"` is serial, `"0"` or `"max"` means all
    /// cores, any other integer is a fixed count.
    pub fn from_str_setting(s: &str) -> Option<Self> {
        match s.trim() {
            "max" | "MAX" | "0" => Some(Parallelism::Max),
            "1" => Some(Parallelism::Serial),
            other => other.parse().ok().map(Parallelism::Threads),
        }
    }
}

/// Derives the RNG seed of one Monte Carlo sample from the run seed and the
/// sample index (SplitMix64 finalizer over a golden-ratio stride).
///
/// Every sample owns an independent stream, so the set of drawn samples — and
/// therefore every statistic — does not depend on how samples are distributed
/// over threads.
pub fn sample_seed(run_seed: u64, sample_index: u64) -> u64 {
    let mut z = run_seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(sample_index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_counts_resolve_sensibly() {
        assert_eq!(Parallelism::Serial.thread_count(), 1);
        assert_eq!(Parallelism::Threads(3).thread_count(), 3);
        assert!(Parallelism::Max.thread_count() >= 1);
        assert_eq!(
            Parallelism::Threads(0).thread_count(),
            Parallelism::Max.thread_count()
        );
    }

    #[test]
    fn settings_parse_from_strings() {
        assert_eq!(
            Parallelism::from_str_setting("1"),
            Some(Parallelism::Serial)
        );
        assert_eq!(Parallelism::from_str_setting("max"), Some(Parallelism::Max));
        assert_eq!(Parallelism::from_str_setting("0"), Some(Parallelism::Max));
        assert_eq!(
            Parallelism::from_str_setting("6"),
            Some(Parallelism::Threads(6))
        );
        assert_eq!(Parallelism::from_str_setting("banana"), None);
    }

    #[test]
    fn install_runs_the_closure_with_the_requested_width() {
        let got = Parallelism::Threads(2)
            .install(rayon::current_num_threads)
            .unwrap();
        assert_eq!(got, 2);
    }

    #[test]
    fn sample_seeds_are_distinct_and_deterministic() {
        let a = sample_seed(42, 0);
        let b = sample_seed(42, 1);
        let c = sample_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, sample_seed(42, 0));
    }
}
