//! The reusable OPERA session engine: set up once, solve many times.
//!
//! The paper's core economics (Eqs. 19–23) are that one Galerkin-augmented
//! assembly plus one symbolic+numeric factorisation amortise over everything
//! downstream. [`OperaEngine`] makes that the default shape of the public
//! API: a typed builder performs grid generation, stochastic-model
//! construction, Galerkin assembly and the solver preparation exactly once,
//! and the resulting engine then serves any number of
//! [scenarios](Scenario) — waveform rescalings, different transient horizons,
//! Monte Carlo validations — without repeating the setup.
//!
//! ```
//! use opera::engine::{OperaEngine, Scenario};
//! use opera_grid::GridSpec;
//! use opera_variation::VariationSpec;
//!
//! # fn main() -> Result<(), opera::OperaError> {
//! let engine = OperaEngine::for_grid(GridSpec::small_test(120))?
//!     .variation(VariationSpec::paper_defaults())
//!     .order(2)
//!     .time_step(0.2e-9)
//!     .end_time(1.0e-9)
//!     .build()?;
//! let solution = engine.solve()?;
//! let heavy = engine.solve_scenario(&Scenario::named("heavy").with_current_scale(1.25))?;
//! let (node, k, drop) = solution.worst_mean_drop(engine.grid().vdd());
//! let (_, _, heavy_drop) = heavy.worst_mean_drop(engine.grid().vdd());
//! assert!(heavy_drop > drop && drop > 0.0);
//! // Both solves shared one assembly and one factorisation.
//! assert_eq!(engine.assembly_count(), 1);
//! assert_eq!(engine.factorization_count(), 1);
//! # let _ = (node, k);
//! # Ok(())
//! # }
//! ```

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use opera_trace::Counter;

pub use opera_collocation::GridKind;
use opera_collocation::{build_grid, solve_collocation, StepScheme, TransientSpec};
use opera_grid::{GridSpec, NodeMap, PowerGrid};
use opera_netlist::LoweredNetlist;
use opera_pce::OrthogonalBasis;
use opera_variation::{StochasticGridModel, VariationSpec};
use rayon::prelude::*;

use crate::adaptive::{AdaptiveOptions, AdaptiveStats};
use crate::analysis::{probe_distributions, ExperimentConfig, ExperimentReport};
use crate::compare::compare;
use crate::galerkin::GalerkinSystem;
use crate::monte_carlo::{run as run_monte_carlo, MonteCarloOptions, MonteCarloResult};
use crate::parallel::Parallelism;
use crate::response::drop_summary;
use crate::solver::{backend_by_name, DirectCholesky, PreparedSolver, SolverBackend};
use crate::stochastic::{
    run_prepared, run_prepared_adaptive, run_prepared_panel, StochasticSolution,
};
use crate::transient::{
    rescale_around_anchor, solve_transient, IntegrationMethod, TransientOptions,
};
use crate::{OperaError, Result};

/// One scenario served by a prepared [`OperaEngine`]: overrides of the
/// engine's defaults that do *not* require re-assembling the Galerkin system.
///
/// * `current_scale` rescales all switching (drain) currents around the
///   quiescent excitation — a pure right-hand-side change that shares the
///   engine's factorisation.
/// * `end_time` extends or shortens the transient horizon — more or fewer
///   steps with the same factors.
/// * `time_step` changes the companion matrix `G̃ + C̃/h`, so the engine
///   transparently prepares a fresh factorisation for that scenario (counted
///   by [`OperaEngine::factorization_count`]); the assembly is still shared.
/// * `mc_samples` / `mc_seed` only affect the Monte Carlo validation half of
///   [`OperaEngine::run_scenario`].
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Label carried through to the [`ScenarioReport`].
    pub label: String,
    /// Multiplier applied to the switching currents (`1.0` = as modelled).
    /// The pad (supply) injection is left untouched: the excitation is scaled
    /// around its quiescent `t = 0` value.
    pub current_scale: f64,
    /// Transient time-step override; `None` uses the engine's step.
    pub time_step: Option<f64>,
    /// Transient end-time override; `None` uses the engine's horizon.
    pub end_time: Option<f64>,
    /// Monte Carlo sample-count override for [`OperaEngine::run_scenario`].
    pub mc_samples: Option<usize>,
    /// Monte Carlo seed override for [`OperaEngine::run_scenario`].
    pub mc_seed: Option<u64>,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            label: String::new(),
            current_scale: 1.0,
            time_step: None,
            end_time: None,
            mc_samples: None,
            mc_seed: None,
        }
    }
}

impl Scenario {
    /// A default scenario with a label.
    pub fn named(label: impl Into<String>) -> Self {
        Scenario {
            label: label.into(),
            ..Scenario::default()
        }
    }

    /// Sets the switching-current scale.
    pub fn with_current_scale(mut self, scale: f64) -> Self {
        self.current_scale = scale;
        self
    }

    /// Overrides the transient time step.
    pub fn with_time_step(mut self, time_step: f64) -> Self {
        self.time_step = Some(time_step);
        self
    }

    /// Overrides the transient end time.
    pub fn with_end_time(mut self, end_time: f64) -> Self {
        self.end_time = Some(end_time);
        self
    }

    /// Overrides the Monte Carlo sample count.
    pub fn with_mc_samples(mut self, samples: usize) -> Self {
        self.mc_samples = Some(samples);
        self
    }

    /// Overrides the Monte Carlo seed.
    pub fn with_mc_seed(mut self, seed: u64) -> Self {
        self.mc_seed = Some(seed);
        self
    }
}

/// The result of running one [`Scenario`] through
/// [`OperaEngine::run_scenario`] or [`OperaEngine::run_batch`].
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The scenario's label.
    pub label: String,
    /// The switching-current scale the scenario ran at.
    pub current_scale: f64,
    /// The full OPERA-vs-Monte-Carlo report. Its `opera_seconds` covers the
    /// solve only — the engine's one-time setup is amortised across the batch
    /// and reported by [`OperaEngine::setup_seconds`].
    pub report: ExperimentReport,
}

/// Monte Carlo configuration for [`OperaEngine::monte_carlo`].
#[derive(Debug, Clone, PartialEq)]
pub struct McConfig {
    /// Number of samples.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
    /// Nodes whose full per-sample traces are recorded.
    pub probe_nodes: Vec<usize>,
}

impl McConfig {
    /// Creates a configuration with no probes.
    pub fn new(samples: usize, seed: u64) -> Self {
        McConfig {
            samples,
            seed,
            probe_nodes: Vec::new(),
        }
    }
}

/// Configuration of one stochastic-collocation sweep served by
/// [`OperaEngine::collocation`]: the quadrature-grid kind and its refinement
/// level. The engine supplies everything else (model, basis, transient
/// settings, parallelism) from its own state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollocationConfig {
    /// Refinement level of the quadrature grid (`≥ 1`). A Smolyak grid at
    /// level `L` integrates total polynomial degree `2L + 1` exactly, so
    /// `level == order` of the engine's expansion is the natural pairing.
    pub level: u32,
    /// Which grid to build (Smolyak sparse grid or full tensor product).
    pub grid: GridKind,
}

impl CollocationConfig {
    /// A Smolyak sparse-grid sweep at the given level.
    pub fn smolyak(level: u32) -> Self {
        CollocationConfig {
            level,
            grid: GridKind::Smolyak,
        }
    }

    /// A full tensor-product sweep at the given level.
    pub fn tensor(level: u32) -> Self {
        CollocationConfig {
            level,
            grid: GridKind::Tensor,
        }
    }
}

impl Default for CollocationConfig {
    fn default() -> Self {
        CollocationConfig::smolyak(2)
    }
}

/// The result of one [`OperaEngine::collocation`] sweep: the polynomial-chaos
/// solution (the same shape [`OperaEngine::solve`] produces) plus the
/// work counters proving the shared-symbolic contract.
#[derive(Debug, Clone)]
pub struct CollocationReport {
    /// The projected polynomial-chaos solution.
    pub solution: StochasticSolution,
    /// The grid kind the sweep ran on.
    pub grid: GridKind,
    /// The refinement level the sweep ran at.
    pub level: u32,
    /// Number of quadrature nodes solved.
    pub nodes: usize,
    /// Symbolic analyses performed (always 1: shared across all nodes).
    pub symbolic_analyses: usize,
    /// Numeric-only factorisations performed (two per node).
    pub numeric_factorizations: usize,
    /// Wall-clock seconds of the sweep (grid build + node solves +
    /// projection).
    pub seconds: f64,
}

enum ModelSource {
    Grid {
        grid: Box<PowerGrid>,
        variation: VariationSpec,
    },
    Model(Box<StochasticGridModel>),
}

/// Typed builder for [`OperaEngine`]. Obtained from
/// [`OperaEngine::for_grid`] or [`OperaEngine::for_model`].
pub struct EngineBuilder {
    source: ModelSource,
    node_names: Option<Arc<NodeMap>>,
    order: u32,
    solver: Arc<dyn SolverBackend>,
    time_step: f64,
    end_time: Option<f64>,
    method: IntegrationMethod,
    adaptive: Option<AdaptiveOptions>,
    mc_samples: usize,
    mc_seed: u64,
    histogram_bins: usize,
    parallelism: Parallelism,
    simd: Option<opera_simd::Backend>,
}

impl EngineBuilder {
    fn new(source: ModelSource) -> Self {
        EngineBuilder {
            source,
            node_names: None,
            order: 2,
            solver: Arc::new(DirectCholesky),
            time_step: 0.05e-9,
            end_time: None,
            method: IntegrationMethod::BackwardEuler,
            adaptive: None,
            mc_samples: 200,
            mc_seed: 42,
            histogram_bins: 30,
            parallelism: Parallelism::Max,
            simd: None,
        }
    }

    /// Sets the process-variation magnitudes (ignored when the builder was
    /// created from an explicit model via [`OperaEngine::for_model`]).
    pub fn variation(mut self, variation: VariationSpec) -> Self {
        if let ModelSource::Grid {
            variation: ref mut v,
            ..
        } = self.source
        {
            *v = variation;
        }
        self
    }

    /// Attaches a node-name ↔ index mapping so reports can name nodes
    /// ([`OperaEngine::for_netlist`] does this automatically from the deck).
    pub fn node_names(mut self, names: NodeMap) -> Self {
        self.node_names = Some(Arc::new(names));
        self
    }

    /// Sets the truncation order of the polynomial-chaos expansion.
    pub fn order(mut self, order: u32) -> Self {
        self.order = order;
        self
    }

    /// Sets the solver backend for the augmented system.
    pub fn solver(mut self, solver: Arc<dyn SolverBackend>) -> Self {
        self.solver = solver;
        self
    }

    /// Sets the solver backend by registered name (see
    /// [`crate::solver::available_backends`]).
    ///
    /// # Errors
    ///
    /// Returns [`OperaError::InvalidOptions`] for unknown backend names.
    pub fn solver_name(mut self, name: &str) -> Result<Self> {
        self.solver = backend_by_name(name)?;
        Ok(self)
    }

    /// Sets the default transient time step in seconds.
    pub fn time_step(mut self, time_step: f64) -> Self {
        self.time_step = time_step;
        self
    }

    /// Sets the default transient end time; the default is the grid's
    /// waveform end time.
    pub fn end_time(mut self, end_time: f64) -> Self {
        self.end_time = Some(end_time);
        self
    }

    /// Sets the time-integration scheme.
    pub fn integration_method(mut self, method: IntegrationMethod) -> Self {
        self.method = method;
        self
    }

    /// Switches the engine's Galerkin transients to LTE-driven adaptive
    /// TR-BDF2 stepping (see [`crate::adaptive`]): the `.tran` grid becomes
    /// the *output* grid while the controller chooses the internal steps, and
    /// the integration method is forced to
    /// [`IntegrationMethod::TrBdf2`]. Requires a direct solver backend
    /// (Cholesky or LU); [`EngineBuilder::build`] rejects iterative backends.
    pub fn adaptive(mut self, adaptive: AdaptiveOptions) -> Self {
        self.adaptive = Some(adaptive);
        self.method = IntegrationMethod::TrBdf2;
        self
    }

    /// Sets the default Monte Carlo sample count for scenario reports.
    pub fn mc_samples(mut self, samples: usize) -> Self {
        self.mc_samples = samples;
        self
    }

    /// Sets the default Monte Carlo seed for scenario reports.
    pub fn mc_seed(mut self, seed: u64) -> Self {
        self.mc_seed = seed;
        self
    }

    /// Sets the number of histogram bins for distribution reports.
    pub fn histogram_bins(mut self, bins: usize) -> Self {
        self.histogram_bins = bins;
        self
    }

    /// Sets the worker-thread budget for batched scenarios and Monte Carlo.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Selects the process-wide SIMD backend for the vectorised hot-loop
    /// kernels (panel triangular solves, supernodal updates, step assembly,
    /// Welford folds). The default is [`crate::SimdBackend::Scalar`] unless
    /// the `OPERA_SIMD` environment variable opted in; every backend is
    /// bit-identical to scalar, so this is purely a performance knob.
    /// [`EngineBuilder::build`] rejects backends the running CPU lacks.
    pub fn simd(mut self, backend: crate::SimdBackend) -> Self {
        self.simd = Some(backend);
        self
    }

    /// Performs the one-time setup: stochastic-model construction, Galerkin
    /// assembly of `G̃`/`C̃` and the solver's symbolic+numeric factorisation.
    ///
    /// # Errors
    ///
    /// Returns [`OperaError::InvalidOptions`] for invalid settings (order 0,
    /// zero Monte Carlo samples, zero histogram bins, bad transient options)
    /// and propagates assembly/factorisation errors.
    pub fn build(self) -> Result<OperaEngine> {
        if self.order == 0 {
            return Err(OperaError::InvalidOptions {
                reason: "expansion order must be at least 1".to_string(),
            });
        }
        if self.mc_samples == 0 {
            return Err(OperaError::InvalidOptions {
                reason: "Monte Carlo sample count must be at least 1".to_string(),
            });
        }
        if self.histogram_bins == 0 {
            return Err(OperaError::InvalidOptions {
                reason: "histogram bin count must be at least 1".to_string(),
            });
        }
        self.solver.validate()?;
        if let Some(backend) = self.simd {
            opera_simd::set_active(backend)
                .map_err(|reason| OperaError::InvalidOptions { reason })?;
        }

        let trace_span = opera_trace::span("engine.build");
        let started = Instant::now();
        let model = match self.source {
            ModelSource::Grid { grid, variation } => {
                StochasticGridModel::inter_die(&grid, &variation)?
            }
            ModelSource::Model(model) => *model,
        };
        let end_time = self
            .end_time
            .unwrap_or_else(|| model.grid().waveform_end_time().max(self.time_step));
        let transient = TransientOptions {
            time_step: self.time_step,
            end_time,
            method: self.method,
        };
        transient.validate()?;
        if let Some(adaptive) = &self.adaptive {
            adaptive.validate()?;
        }

        let basis =
            OrthogonalBasis::total_order_mixed(model.families(), model.n_vars(), self.order)?;
        let system = GalerkinSystem::assemble(&model, &basis)?;
        let prepared = self.solver.prepare(&model, &system, &transient)?;
        if self.adaptive.is_some() && prepared.companion_family().is_none() {
            return Err(OperaError::InvalidOptions {
                reason: format!(
                    "adaptive stepping requires a direct solver backend, \
                     but '{}' exposes no companion family",
                    self.solver.name()
                ),
            });
        }
        let setup_seconds = started.elapsed().as_secs_f64();
        drop(trace_span);

        // The build above performed exactly one assembly and one solver
        // preparation; start the engine's counters accordingly.
        let assemblies = Counter::new("engine.assemblies");
        assemblies.incr();
        let factorizations = Counter::new("engine.factorizations");
        factorizations.incr();

        Ok(OperaEngine {
            model,
            node_names: self.node_names,
            system,
            solver: self.solver,
            prepared,
            transient,
            adaptive: self.adaptive,
            mc_samples: self.mc_samples,
            mc_seed: self.mc_seed,
            histogram_bins: self.histogram_bins,
            parallelism: self.parallelism,
            setup_seconds,
            assemblies,
            factorizations,
            collocation_symbolics: Counter::new("engine.collocation_symbolic_analyses"),
            collocation_factorizations: Counter::new("engine.collocation_factorizations"),
        })
    }
}

/// A long-lived OPERA session: the generated grid, the stochastic model, the
/// assembled Galerkin system and the prepared solver factorisation, reusable
/// across arbitrarily many solves, scenarios and Monte Carlo validations.
pub struct OperaEngine {
    model: StochasticGridModel,
    node_names: Option<Arc<NodeMap>>,
    system: GalerkinSystem,
    solver: Arc<dyn SolverBackend>,
    prepared: Box<dyn PreparedSolver>,
    transient: TransientOptions,
    adaptive: Option<AdaptiveOptions>,
    mc_samples: usize,
    mc_seed: u64,
    histogram_bins: usize,
    parallelism: Parallelism,
    setup_seconds: f64,
    assemblies: Counter,
    factorizations: Counter,
    collocation_symbolics: Counter,
    collocation_factorizations: Counter,
}

impl fmt::Debug for OperaEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OperaEngine")
            .field("nodes", &self.node_count())
            .field("basis_size", &self.basis_size())
            .field("solver", &self.solver.name())
            .field("transient", &self.transient)
            .finish_non_exhaustive()
    }
}

impl OperaEngine {
    /// Starts a builder that will generate the grid from `spec` (the grid is
    /// elaborated eagerly, so spec errors surface here).
    ///
    /// # Errors
    ///
    /// Propagates grid-generation errors.
    pub fn for_grid(spec: GridSpec) -> Result<EngineBuilder> {
        let grid = spec.build()?;
        Ok(EngineBuilder::new(ModelSource::Grid {
            grid: Box::new(grid),
            variation: VariationSpec::paper_defaults(),
        }))
    }

    /// Starts a builder from an already constructed stochastic model (e.g.
    /// the three-variable inter-die model or an intra-die model).
    pub fn for_model(model: StochasticGridModel) -> EngineBuilder {
        EngineBuilder::new(ModelSource::Model(Box::new(model)))
    }

    /// Starts a builder from a SPICE-style deck file: the deck is parsed
    /// and lowered eagerly (so netlist errors surface here, with line
    /// spans), the deck's `.tran` window becomes the engine's default
    /// transient settings, and the deck's node names are attached so every
    /// report can name real nodes (see [`OperaEngine::node_name`]).
    ///
    /// The accepted grammar is documented in `docs/NETLIST.md`. Note that
    /// deck waveforms are materialised over the deck's `.tran` window:
    /// periodic `PULSE` sources hold their final value beyond it, so widen
    /// the deck's `.tran` (rather than overriding `end_time`) when a longer
    /// driven horizon is needed.
    ///
    /// # Errors
    ///
    /// Returns [`OperaError::Netlist`] for I/O, parse and lowering errors.
    pub fn for_netlist(path: impl AsRef<std::path::Path>) -> Result<EngineBuilder> {
        Ok(Self::for_lowered_netlist(opera_netlist::load(path)?))
    }

    /// Like [`OperaEngine::for_netlist`], but parses deck text directly.
    ///
    /// ```
    /// use opera::engine::OperaEngine;
    ///
    /// # fn main() -> Result<(), opera::OperaError> {
    /// let engine = OperaEngine::for_netlist_str(
    ///     "VDD p 0 1.2\n\
    ///      Rpad p n1 0.05\n\
    ///      Rw1 n1 n2 0.2\n\
    ///      C1 n1 0 10f class=gate\n\
    ///      C2 n2 0 10f\n\
    ///      I1 n2 0 PWL(0 0 0.4n 5m 0.8n 0)\n\
    ///      .tran 0.2n 0.8n\n",
    /// )?
    /// .mc_samples(10)
    /// .build()?;
    /// let solution = engine.solve()?;
    /// let (node, _, drop) = solution.worst_mean_drop(engine.grid().vdd());
    /// assert_eq!(engine.node_name(node), Some("n2"));
    /// assert!(drop > 0.0);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`OperaError::Netlist`] for parse and lowering errors.
    pub fn for_netlist_str(text: &str) -> Result<EngineBuilder> {
        Ok(Self::for_lowered_netlist(
            opera_netlist::parse(text)?.lower()?,
        ))
    }

    /// Starts a builder from an already lowered netlist, attaching its node
    /// names and adopting its `.tran` window (and `method=` scheme, when the
    /// deck named one) as the transient defaults.
    pub fn for_lowered_netlist(lowered: LoweredNetlist) -> EngineBuilder {
        let LoweredNetlist { grid, nodes, tran } = lowered;
        let mut builder = EngineBuilder::new(ModelSource::Grid {
            grid: Box::new(grid),
            variation: VariationSpec::paper_defaults(),
        });
        builder.node_names = Some(Arc::new(nodes));
        if let Some(tran) = tran {
            builder.time_step = tran.time_step;
            builder.end_time = Some(tran.end_time);
            if let Some(method) = tran.method {
                builder.method = match method {
                    opera_netlist::TranMethod::BackwardEuler => IntegrationMethod::BackwardEuler,
                    opera_netlist::TranMethod::Trapezoidal => IntegrationMethod::Trapezoidal,
                    opera_netlist::TranMethod::TrBdf2 => IntegrationMethod::TrBdf2,
                };
            }
        }
        builder
    }

    /// Builds an engine from an [`ExperimentConfig`] front end.
    ///
    /// # Errors
    ///
    /// Returns [`OperaError::InvalidOptions`] for invalid configurations and
    /// propagates setup errors.
    pub fn from_config(config: &ExperimentConfig) -> Result<OperaEngine> {
        config.validate()?;
        let mut builder = OperaEngine::for_grid(config.grid_spec.clone())?
            .variation(config.variation)
            .order(config.order)
            .solver_name(&config.solver)?
            .time_step(config.time_step)
            .mc_samples(config.mc_samples)
            .mc_seed(config.mc_seed)
            .histogram_bins(config.histogram_bins)
            .parallelism(config.parallelism);
        if let Some(end_time) = config.end_time {
            builder = builder.end_time(end_time);
        }
        builder.build()
    }

    /// The power grid the engine was built for.
    pub fn grid(&self) -> &PowerGrid {
        self.model.grid()
    }

    /// The stochastic grid model.
    pub fn model(&self) -> &StochasticGridModel {
        &self.model
    }

    /// The node-name ↔ index mapping, when the engine was built from a
    /// netlist (or a mapping was attached via [`EngineBuilder::node_names`]).
    pub fn node_map(&self) -> Option<&NodeMap> {
        self.node_names.as_deref()
    }

    /// The deck name of node `index`, when known.
    pub fn node_name(&self, index: usize) -> Option<&str> {
        self.node_names.as_deref().and_then(|m| m.name(index))
    }

    /// The index of the node named `name` in the deck, when known.
    pub fn node_index(&self, name: &str) -> Option<usize> {
        self.node_names.as_deref().and_then(|m| m.index(name))
    }

    /// A display label for node `index`: its deck name, or `#index` for
    /// grids without names.
    pub fn node_label(&self, index: usize) -> String {
        match self.node_name(index) {
            Some(name) => name.to_string(),
            None => format!("#{index}"),
        }
    }

    /// The assembled Galerkin system.
    pub fn system(&self) -> &GalerkinSystem {
        &self.system
    }

    /// The solver backend.
    pub fn solver(&self) -> &dyn SolverBackend {
        self.solver.as_ref()
    }

    /// The adaptive-stepping options the engine was built with, if any.
    pub fn adaptive_options(&self) -> Option<&AdaptiveOptions> {
        self.adaptive.as_ref()
    }

    /// The engine's default transient options.
    pub fn transient(&self) -> &TransientOptions {
        &self.transient
    }

    /// Number of grid nodes.
    pub fn node_count(&self) -> usize {
        self.model.node_count()
    }

    /// Number of basis functions `N + 1`.
    pub fn basis_size(&self) -> usize {
        self.system.basis_size()
    }

    /// Wall-clock seconds of the one-time setup (model construction,
    /// assembly, factorisation).
    pub fn setup_seconds(&self) -> f64 {
        self.setup_seconds
    }

    /// Changes the worker-thread budget of later batched scenarios, Monte
    /// Carlo validations and collocation sweeps. Purely a wall-clock knob:
    /// every statistic is bit-identical for every setting (see
    /// `tests/integration_smoke.rs`), so benchmarks can sweep thread counts
    /// against one prepared engine instead of rebuilding it.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    /// How many Galerkin assemblies the engine has performed (one at build
    /// time; scenarios never re-assemble). Test hook for the
    /// setup-once/solve-many contract — a thin shim over the engine's
    /// `engine.assemblies` [`Counter`] (see `docs/OBSERVABILITY.md`).
    pub fn assembly_count(&self) -> usize {
        self.assemblies.get() as usize
    }

    /// How many solver preparations (symbolic+numeric factorisations or
    /// preconditioner setups) the engine has performed: one at build time,
    /// plus one per scenario that overrides the time step. A thin shim over
    /// the `engine.factorizations` [`Counter`].
    pub fn factorization_count(&self) -> usize {
        self.factorizations.get() as usize
    }

    /// How many *symbolic* Cholesky analyses (ordering + elimination tree)
    /// the engine's collocation sweeps have performed — one per
    /// [`collocation`](Self::collocation) call, shared by every quadrature
    /// node of that sweep. Test hook for the shared-symbolic contract — a
    /// thin shim over the `engine.collocation_symbolic_analyses` [`Counter`].
    pub fn collocation_symbolic_count(&self) -> usize {
        self.collocation_symbolics.get() as usize
    }

    /// How many numeric-only factorisations the engine's collocation sweeps
    /// have performed against their shared symbolic analyses (two per
    /// quadrature node: the DC matrix and the companion matrix). A thin shim
    /// over the `engine.collocation_factorizations` [`Counter`].
    pub fn collocation_factorization_count(&self) -> usize {
        self.collocation_factorizations.get() as usize
    }

    /// Test hook for the allocation-free hot-loop contract: runs a short
    /// augmented transient (DC start plus four steps) against the engine's
    /// prepared solver with one reused
    /// [`SolveWorkspace`](opera_sparse::SolveWorkspace) and returns how many
    /// workspace buffer growths the steps *after the first* performed. For
    /// the direct backends this is `0`: every steady-state step borrows all
    /// solver scratch from the warm workspace and never touches the
    /// allocator. CI asserts exactly that.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn steady_state_step_allocations(&self) -> Result<usize> {
        let dim = self.system.dim();
        let mut ws = opera_sparse::SolveWorkspace::new();
        let u0 = self.system.excitation(&self.model, 0.0);
        let mut state = vec![0.0; dim];
        self.prepared.solve_dc_into(&u0, &mut state, &mut ws)?;
        let mut next = vec![0.0; dim];
        let two_stage = self.transient.method == IntegrationMethod::TrBdf2;
        let mut stage = vec![0.0; if two_stage { dim } else { 0 }];
        let h = self.transient.time_step;
        let mut advance = |state: &[f64],
                           u_prev: &[f64],
                           t_prev: f64,
                           t: f64,
                           u_next: &[f64],
                           next: &mut [f64],
                           ws: &mut opera_sparse::SolveWorkspace|
         -> Result<()> {
            if two_stage {
                let u_mid = self.system.excitation(
                    &self.model,
                    t_prev + crate::transient::TR_BDF2_GAMMA * (t - t_prev),
                );
                self.prepared
                    .step_tr_bdf2_into(state, u_prev, &u_mid, u_next, &mut stage, next, ws)
            } else {
                self.prepared.step_into(state, u_prev, u_next, next, ws)
            }
        };
        // Warm-up step: the workspace may grow here, once.
        let mut u_prev = u0;
        let mut u_next = self.system.excitation(&self.model, h);
        advance(&state, &u_prev, 0.0, h, &u_next, &mut next, &mut ws)?;
        std::mem::swap(&mut state, &mut next);
        std::mem::swap(&mut u_prev, &mut u_next);
        let warm = ws.allocation_count();
        // Steady state: three more steps must not grow the workspace at all.
        for k in 2..=4 {
            let t = k as f64 * h;
            u_next = self.system.excitation(&self.model, t);
            advance(
                &state,
                &u_prev,
                (k - 1) as f64 * h,
                t,
                &u_next,
                &mut next,
                &mut ws,
            )?;
            std::mem::swap(&mut state, &mut next);
            std::mem::swap(&mut u_prev, &mut u_next);
        }
        Ok(ws.allocation_count() - warm)
    }

    /// Solves the engine's baseline configuration (the default
    /// [`Scenario`]), reusing the prepared factorisation.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn solve(&self) -> Result<StochasticSolution> {
        self.solve_scenario(&Scenario::default())
    }

    /// Solves one scenario. Right-hand-side overrides (`current_scale`,
    /// `end_time`) reuse the engine's factorisation; a `time_step` override
    /// prepares a fresh factorisation for the scenario but still shares the
    /// assembled system.
    ///
    /// # Errors
    ///
    /// Returns [`OperaError::InvalidOptions`] for invalid overrides and
    /// propagates solver errors.
    pub fn solve_scenario(&self, scenario: &Scenario) -> Result<StochasticSolution> {
        match &self.adaptive {
            Some(adaptive) => self
                .solve_scenario_adaptive_with(scenario, adaptive)
                .map(|(solution, _)| solution),
            None => {
                let transient = self.scenario_transient(scenario)?;
                let fresh = self.prepare_if_needed(&transient)?;
                let prepared = fresh.as_deref().unwrap_or(self.prepared.as_ref());
                let scale = scenario.current_scale;
                let anchor = (scale != 1.0).then(|| self.system.excitation(&self.model, 0.0));
                run_prepared(
                    prepared,
                    &self.system,
                    |t| {
                        let mut u = self.system.excitation(&self.model, t);
                        if let Some(u0) = &anchor {
                            rescale_around_anchor(&mut u, u0, scale);
                        }
                        u
                    },
                    transient.time_points(),
                    transient.method,
                )
            }
        }
    }

    /// Solves one scenario with LTE-driven adaptive TR-BDF2 stepping and
    /// returns the controller statistics alongside the solution. The solution
    /// is reported on the scenario's `.tran` grid (dense interpolated
    /// output), exactly like [`solve_scenario`](Self::solve_scenario) when
    /// the engine was [built adaptive](EngineBuilder::adaptive).
    ///
    /// # Errors
    ///
    /// Returns [`OperaError::InvalidOptions`] when the engine's backend
    /// exposes no companion family, for invalid overrides, and when the
    /// controller cannot meet its tolerance; propagates solver errors.
    pub fn solve_scenario_adaptive(
        &self,
        scenario: &Scenario,
        adaptive: &AdaptiveOptions,
    ) -> Result<(StochasticSolution, AdaptiveStats)> {
        self.solve_scenario_adaptive_with(scenario, adaptive)
    }

    fn solve_scenario_adaptive_with(
        &self,
        scenario: &Scenario,
        adaptive: &AdaptiveOptions,
    ) -> Result<(StochasticSolution, AdaptiveStats)> {
        let transient = self.scenario_transient(scenario)?;
        let scale = scenario.current_scale;
        let anchor = (scale != 1.0).then(|| self.system.excitation(&self.model, 0.0));
        run_prepared_adaptive(
            self.prepared.as_ref(),
            &self.system,
            |t| {
                let mut u = self.system.excitation(&self.model, t);
                if let Some(u0) = &anchor {
                    rescale_around_anchor(&mut u, u0, scale);
                }
                u
            },
            transient.time_points(),
            adaptive,
        )
    }

    /// Runs a stochastic-collocation sweep on the engine's model, the
    /// non-intrusive cross-check of the Galerkin path: every node of a
    /// Smolyak (or tensor) quadrature grid gets its own *deterministic*
    /// transient solve at that parameter realisation, all node
    /// factorisations share **one** symbolic analysis (no re-assembly of the
    /// pattern, no re-ordering), and the node results are projected onto the
    /// engine's polynomial-chaos basis.
    ///
    /// Node solves fan out over the engine's [`Parallelism`] pool with a
    /// deterministic reduction order, so the returned statistics are
    /// bit-identical for every worker-thread count.
    ///
    /// # Errors
    ///
    /// Returns [`OperaError::InvalidOptions`] for a zero level and propagates
    /// grid-construction, realisation and factorisation errors.
    pub fn collocation(&self, config: &CollocationConfig) -> Result<CollocationReport> {
        self.parallelism
            .install(|| self.collocation_in_pool(config, &Scenario::default()))?
    }

    /// Runs one scenario end to end like [`run_scenario`](Self::run_scenario)
    /// but computes the stochastic solution by collocation instead of the
    /// Galerkin solve, validating it against the same Monte Carlo baseline.
    ///
    /// # Errors
    ///
    /// Propagates collocation, solver and sampling errors.
    pub fn run_collocation_scenario(
        &self,
        scenario: &Scenario,
        config: &CollocationConfig,
    ) -> Result<ScenarioReport> {
        self.parallelism.install(|| {
            let report = self.collocation_in_pool(config, scenario)?;
            self.finish_scenario_report(scenario, report.solution, report.seconds)
        })?
    }

    /// The collocation sweep proper, run on the ambient pool.
    fn collocation_in_pool(
        &self,
        config: &CollocationConfig,
        scenario: &Scenario,
    ) -> Result<CollocationReport> {
        if config.level == 0 {
            return Err(OperaError::InvalidOptions {
                reason: "collocation level must be at least 1 \
                         (level 0 degenerates to the single mean node)"
                    .to_string(),
            });
        }
        let transient = self.scenario_transient(scenario)?;
        let spec = TransientSpec {
            time_step: transient.time_step,
            end_time: transient.end_time,
            scheme: match transient.method {
                IntegrationMethod::BackwardEuler => StepScheme::BackwardEuler,
                IntegrationMethod::Trapezoidal => StepScheme::Trapezoidal,
                IntegrationMethod::TrBdf2 => StepScheme::TrBdf2,
            },
            current_scale: scenario.current_scale,
        };
        let started = Instant::now();
        let trace_span = opera_trace::span("collocation.sweep");
        let quadrature = build_grid(config.grid, &self.model.families(), config.level)
            .map_err(OperaError::from)?;
        let run = solve_collocation(&self.model, self.system.basis(), &quadrature, &spec)
            .map_err(OperaError::from)?;
        drop(trace_span);
        let seconds = started.elapsed().as_secs_f64();
        self.collocation_symbolics
            .add(run.stats.symbolic_analyses as u64);
        self.collocation_factorizations
            .add(run.stats.numeric_factorizations as u64);
        let solution = StochasticSolution::new(
            self.system.basis().clone(),
            run.times,
            run.node_count,
            run.coefficients,
        );
        Ok(CollocationReport {
            solution,
            grid: config.grid,
            level: config.level,
            nodes: run.stats.nodes,
            symbolic_analyses: run.stats.symbolic_analyses,
            numeric_factorizations: run.stats.numeric_factorizations,
            seconds,
        })
    }

    /// Runs the Monte Carlo baseline on the engine's model and default
    /// transient configuration, on the engine's
    /// [`Parallelism`] pool.
    ///
    /// # Errors
    ///
    /// Returns [`OperaError::InvalidOptions`] for zero samples and propagates
    /// sampling/factorisation errors.
    pub fn monte_carlo(&self, config: &McConfig) -> Result<MonteCarloResult> {
        let options = MonteCarloOptions {
            samples: config.samples,
            seed: config.seed,
            transient: self.transient,
            probe_nodes: config.probe_nodes.clone(),
            current_scale: 1.0,
        };
        self.parallelism
            .install(|| run_monte_carlo(&self.model, &options))?
    }

    /// Runs one scenario end to end — OPERA solve, Monte Carlo validation,
    /// accuracy comparison and drop distribution — on the engine's pool.
    ///
    /// # Errors
    ///
    /// Propagates solver and sampling errors.
    pub fn run_scenario(&self, scenario: &Scenario) -> Result<ScenarioReport> {
        self.parallelism
            .install(|| self.run_scenario_in_pool(scenario))?
    }

    /// Runs a batch of independent scenarios, sharing the engine's single
    /// assembly and factorisation across all of them.
    ///
    /// Scenarios that reuse the engine's prepared factors *and* its time grid
    /// (no `time_step`/`end_time` override) are solved together as **one
    /// panel-batched transient**: at every time step their augmented states
    /// form the columns of a dense panel and advance through a single blocked
    /// multi-RHS solve, streaming the factor once per step instead of once
    /// per scenario per step. The remaining scenarios fall back to individual
    /// solves distributed over the engine's [`Parallelism`] pool, which also
    /// runs every scenario's Monte Carlo validation.
    ///
    /// Statistics are bit-identical to running each scenario alone (each
    /// panel column performs exactly the scalar solve's arithmetic, and the
    /// Monte Carlo accumulation is thread-count neutral). Per-scenario
    /// wall-clock fields (`opera_seconds`, `monte_carlo_seconds`, `speedup`)
    /// are approximate in a batch: panel-solved scenarios report an equal
    /// share of the panel's wall-clock time, and the rest are timed while
    /// other scenarios run concurrently — use
    /// [`run_scenario`](Self::run_scenario) when a scenario's isolated timing
    /// matters.
    ///
    /// # Errors
    ///
    /// Propagates the first scenario error.
    pub fn run_batch(&self, scenarios: &[Scenario]) -> Result<Vec<ScenarioReport>> {
        self.parallelism.install(|| {
            // Validate every scenario up front (the panel path must reject
            // bad overrides exactly like the scalar path would).
            for scenario in scenarios {
                self.scenario_transient(scenario)?;
            }
            // Scenarios without transient overrides share the engine's
            // factors and time grid: solve them as one panel. Adaptive
            // engines skip the panel path — each scenario's controller picks
            // its own step sequence, so there is no shared grid to batch on.
            let batchable: Vec<usize> = (0..scenarios.len())
                .filter(|&i| {
                    self.adaptive.is_none()
                        && scenarios[i].time_step.is_none()
                        && scenarios[i].end_time.is_none()
                })
                .collect();
            let mut solutions: Vec<Option<(StochasticSolution, f64)>> =
                (0..scenarios.len()).map(|_| None).collect();
            if batchable.len() > 1 {
                let scales: Vec<f64> = batchable
                    .iter()
                    .map(|&i| scenarios[i].current_scale)
                    .collect();
                let anchor = scales
                    .iter()
                    .any(|&s| s != 1.0)
                    .then(|| self.system.excitation(&self.model, 0.0));
                let t0 = Instant::now();
                let panel_solutions = run_prepared_panel(
                    self.prepared.as_ref(),
                    &self.system,
                    |t| self.system.excitation(&self.model, t),
                    anchor.as_deref(),
                    &scales,
                    self.transient.time_points(),
                    self.transient.method,
                )?;
                let share = t0.elapsed().as_secs_f64() / batchable.len() as f64;
                for (&i, solution) in batchable.iter().zip(panel_solutions) {
                    solutions[i] = Some((solution, share));
                }
            }
            let work: Vec<(usize, Option<(StochasticSolution, f64)>)> =
                solutions.into_iter().enumerate().collect();
            // Captured before the fan-out: each worker's scenario span
            // attaches to the span that launched the batch, not to whatever
            // the worker thread happened to run last.
            let parent = opera_trace::current_span();
            work.into_par_iter()
                .map(|(i, solution)| {
                    let _span = opera_trace::span_under(parent, "batch.scenario");
                    match solution {
                        Some((solution, seconds)) => {
                            self.finish_scenario_report(&scenarios[i], solution, seconds)
                        }
                        None => self.run_scenario_in_pool(&scenarios[i]),
                    }
                })
                .collect::<Result<Vec<_>>>()
        })?
    }

    fn scenario_transient(&self, scenario: &Scenario) -> Result<TransientOptions> {
        if !scenario.current_scale.is_finite() || scenario.current_scale < 0.0 {
            return Err(OperaError::InvalidOptions {
                reason: format!(
                    "scenario current_scale must be finite and non-negative, got {}",
                    scenario.current_scale
                ),
            });
        }
        let transient = TransientOptions {
            time_step: scenario.time_step.unwrap_or(self.transient.time_step),
            end_time: scenario.end_time.unwrap_or(self.transient.end_time),
            method: self.transient.method,
        };
        transient.validate()?;
        Ok(transient)
    }

    /// Returns a freshly prepared solver when `transient` is incompatible
    /// with the engine's prepared factors (different time step), `None` when
    /// the shared preparation can be reused. Backends with a
    /// [`CompanionFamily`](crate::transient::CompanionFamily) re-step via a
    /// numeric-only refactorisation against the shared symbolic analysis
    /// ([`PreparedSolver::with_time_step`]); others run a full prepare.
    /// Either way the refresh counts towards
    /// [`factorization_count`](Self::factorization_count).
    fn prepare_if_needed(
        &self,
        transient: &TransientOptions,
    ) -> Result<Option<Box<dyn PreparedSolver>>> {
        if transient.time_step == self.transient.time_step
            && transient.method == self.transient.method
        {
            return Ok(None);
        }
        if transient.method == self.transient.method {
            if let Some(restepped) = self.prepared.with_time_step(transient.time_step)? {
                self.factorizations.incr();
                return Ok(Some(restepped));
            }
        }
        let prepared = self.solver.prepare(&self.model, &self.system, transient)?;
        self.factorizations.incr();
        Ok(Some(prepared))
    }

    fn run_scenario_in_pool(&self, scenario: &Scenario) -> Result<ScenarioReport> {
        // --- OPERA (timed; setup is amortised and reported separately).
        let t0 = Instant::now();
        let opera_solution = self.solve_scenario(scenario)?;
        let opera_seconds = t0.elapsed().as_secs_f64();
        self.finish_scenario_report(scenario, opera_solution, opera_seconds)
    }

    /// The backend-independent half of a scenario run: given a stochastic
    /// solution (Galerkin or collocation) and the seconds it took, runs the
    /// Monte Carlo validation, accuracy comparison and drop distribution.
    fn finish_scenario_report(
        &self,
        scenario: &Scenario,
        opera_solution: StochasticSolution,
        opera_seconds: f64,
    ) -> Result<ScenarioReport> {
        let transient = self.scenario_transient(scenario)?;
        let grid = self.model.grid();
        let vdd = grid.vdd();
        let mc_samples = scenario.mc_samples.unwrap_or(self.mc_samples);
        let mc_seed = scenario.mc_seed.unwrap_or(self.mc_seed);

        // Probe node: worst mean drop of the OPERA solution.
        let (probe_node, probe_time, _) = opera_solution.worst_mean_drop(vdd);

        // --- Monte Carlo (timed) on the ambient pool.
        let mc_options = MonteCarloOptions {
            samples: mc_samples,
            seed: mc_seed,
            transient,
            probe_nodes: vec![probe_node],
            current_scale: scenario.current_scale,
        };
        let t1 = Instant::now();
        let mc_result = run_monte_carlo(&self.model, &mc_options)?;
        let monte_carlo_seconds = t1.elapsed().as_secs_f64();

        // --- Nominal (no-variation) transient for the µ₀ reference, with the
        // scenario's waveform scaling applied around the quiescent point.
        let scale = scenario.current_scale;
        let anchor = (scale != 1.0).then(|| grid.excitation(0.0));
        let nominal = solve_transient(
            &grid.conductance_matrix(),
            &grid.capacitance_matrix(),
            |t| {
                let mut u = grid.excitation(t);
                if let Some(u0) = &anchor {
                    rescale_around_anchor(&mut u, u0, scale);
                }
                u
            },
            &transient,
        )?;

        let summary = drop_summary(&opera_solution, vdd, Some(&nominal));
        let errors = compare(&opera_solution, &mc_result, vdd);
        let distribution = probe_distributions(
            &opera_solution,
            &mc_result,
            vdd,
            probe_node,
            probe_time,
            self.histogram_bins,
            mc_seed ^ 0x5eed,
        )?;

        Ok(ScenarioReport {
            label: scenario.label.clone(),
            current_scale: scale,
            report: ExperimentReport {
                node_count: grid.node_count(),
                opera: summary,
                errors,
                opera_seconds,
                monte_carlo_seconds,
                speedup: if opera_seconds > 0.0 {
                    monte_carlo_seconds / opera_seconds
                } else {
                    f64::INFINITY
                },
                mc_samples,
                distribution,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::BLOCK_JACOBI_CG;

    fn quick_engine() -> OperaEngine {
        OperaEngine::for_grid(GridSpec::small_test(110))
            .unwrap()
            .variation(VariationSpec::paper_defaults())
            .time_step(0.25e-9)
            .end_time(1.0e-9)
            .mc_samples(20)
            .mc_seed(7)
            .histogram_bins(10)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_rejects_invalid_settings() {
        let builder = |f: fn(EngineBuilder) -> EngineBuilder| {
            f(OperaEngine::for_grid(GridSpec::small_test(80)).unwrap()).build()
        };
        assert!(matches!(
            builder(|b| b.order(0)),
            Err(OperaError::InvalidOptions { .. })
        ));
        assert!(matches!(
            builder(|b| b.mc_samples(0)),
            Err(OperaError::InvalidOptions { .. })
        ));
        assert!(matches!(
            builder(|b| b.histogram_bins(0)),
            Err(OperaError::InvalidOptions { .. })
        ));
        assert!(matches!(
            builder(|b| b.time_step(-1.0)),
            Err(OperaError::InvalidOptions { .. })
        ));
        assert!(OperaEngine::for_grid(GridSpec::small_test(80))
            .unwrap()
            .solver_name("no-such-backend")
            .is_err());
    }

    #[test]
    fn scenario_overrides_share_or_refresh_the_factorisation() {
        let engine = quick_engine();
        assert_eq!(engine.assembly_count(), 1);
        assert_eq!(engine.factorization_count(), 1);

        // RHS-only overrides reuse the factors.
        engine.solve().unwrap();
        engine
            .solve_scenario(&Scenario::default().with_current_scale(1.5))
            .unwrap();
        engine
            .solve_scenario(&Scenario::default().with_end_time(0.5e-9))
            .unwrap();
        assert_eq!(engine.factorization_count(), 1);

        // A time-step override needs a fresh companion factorisation, but
        // never a re-assembly.
        engine
            .solve_scenario(&Scenario::default().with_time_step(0.5e-9))
            .unwrap();
        assert_eq!(engine.factorization_count(), 2);
        assert_eq!(engine.assembly_count(), 1);
    }

    #[test]
    fn current_scale_one_is_bit_identical_to_the_baseline() {
        let engine = quick_engine();
        let base = engine.solve().unwrap();
        let scaled = engine
            .solve_scenario(&Scenario::default().with_current_scale(1.0))
            .unwrap();
        let k = base.times().len() - 1;
        for n in 0..base.node_count() {
            assert_eq!(base.mean_at(k, n), scaled.mean_at(k, n));
            assert_eq!(base.variance_at(k, n), scaled.variance_at(k, n));
        }
    }

    #[test]
    fn current_scale_scales_the_drop_but_not_the_supply_level() {
        let engine = quick_engine();
        let vdd = engine.grid().vdd();
        let base = engine.solve().unwrap();
        let heavy = engine
            .solve_scenario(&Scenario::default().with_current_scale(2.0))
            .unwrap();
        let (node, k, base_drop) = base.worst_mean_drop(vdd);
        let (_, _, heavy_drop) = heavy.worst_mean_drop(vdd);
        assert!(base_drop > 0.0);
        // Doubling the switching currents should roughly double the dynamic
        // part of the drop (the DC pad level is unchanged, so not exactly).
        assert!(
            heavy_drop > 1.3 * base_drop,
            "drop did not scale: {base_drop} -> {heavy_drop}"
        );
        // At t = 0 (quiescence) the two scenarios coincide exactly.
        for n in (0..base.node_count()).step_by(11) {
            assert!((base.mean_at(0, n) - heavy.mean_at(0, n)).abs() < 1e-12);
        }
        let _ = (node, k);
    }

    #[test]
    fn invalid_scenarios_are_rejected() {
        let engine = quick_engine();
        assert!(matches!(
            engine.solve_scenario(&Scenario::default().with_current_scale(f64::NAN)),
            Err(OperaError::InvalidOptions { .. })
        ));
        assert!(matches!(
            engine.solve_scenario(&Scenario::default().with_time_step(0.0)),
            Err(OperaError::InvalidOptions { .. })
        ));
    }

    #[test]
    fn monte_carlo_and_run_scenario_work_from_the_engine() {
        let engine = quick_engine();
        let mc = engine.monte_carlo(&McConfig::new(8, 3)).unwrap();
        assert_eq!(mc.samples, 8);
        let report = engine
            .run_scenario(&Scenario::named("demo").with_mc_samples(12))
            .unwrap();
        assert_eq!(report.label, "demo");
        assert_eq!(report.report.mc_samples, 12);
        assert!(report.report.errors.avg_mean_error_percent < 1.0);
    }

    #[test]
    fn scaled_scenarios_keep_opera_and_monte_carlo_consistent() {
        // If the engine scaled the Galerkin excitation but the Monte Carlo
        // baseline did not (or vice versa), the mean error would blow up.
        let engine = quick_engine();
        let report = engine
            .run_scenario(
                &Scenario::named("heavy")
                    .with_current_scale(1.5)
                    .with_mc_samples(25),
            )
            .unwrap();
        assert!(
            report.report.errors.avg_mean_error_percent < 1.0,
            "scaled scenario disagrees with its Monte Carlo baseline: {} %VDD",
            report.report.errors.avg_mean_error_percent
        );
        assert_eq!(report.current_scale, 1.5);
    }

    #[test]
    fn collocation_agrees_with_the_galerkin_solve() {
        let engine = quick_engine();
        let vdd = engine.grid().vdd();
        let galerkin = engine.solve().unwrap();
        let report = engine.collocation(&CollocationConfig::smolyak(2)).unwrap();
        assert_eq!(report.level, 2);
        assert_eq!(report.grid, GridKind::Smolyak);
        assert!(report.nodes > 1);
        assert_eq!(report.symbolic_analyses, 1);
        assert_eq!(engine.collocation_symbolic_count(), 1);
        assert_eq!(engine.collocation_factorization_count(), 2 * report.nodes);
        let colloc = &report.solution;
        assert_eq!(colloc.times(), galerkin.times());
        let (node, k, drop) = galerkin.worst_mean_drop(vdd);
        assert!(drop > 0.0);
        let mean_diff = (colloc.mean_at(k, node) - galerkin.mean_at(k, node)).abs();
        assert!(mean_diff < 1e-4 * vdd, "mean differs by {mean_diff}");
        let sigma_g = galerkin.std_dev_at(k, node);
        let sigma_c = colloc.std_dev_at(k, node);
        assert!(sigma_g > 0.0);
        assert!(
            (sigma_g - sigma_c).abs() < 0.05 * sigma_g,
            "sigma {sigma_g} vs {sigma_c}"
        );
    }

    #[test]
    fn collocation_rejects_level_zero_and_tensor_matches_smolyak() {
        let engine = quick_engine();
        assert!(matches!(
            engine.collocation(&CollocationConfig::smolyak(0)),
            Err(OperaError::InvalidOptions { .. })
        ));
        let smolyak = engine.collocation(&CollocationConfig::smolyak(2)).unwrap();
        let tensor = engine.collocation(&CollocationConfig::tensor(2)).unwrap();
        assert!(tensor.nodes >= smolyak.nodes);
        let k = smolyak.solution.times().len() - 1;
        for n in (0..smolyak.solution.node_count()).step_by(17) {
            let d = (smolyak.solution.mean_at(k, n) - tensor.solution.mean_at(k, n)).abs();
            assert!(d < 1e-6, "smolyak and tensor means differ by {d}");
        }
    }

    #[test]
    fn collocation_scenarios_validate_against_monte_carlo() {
        let engine = quick_engine();
        let report = engine
            .run_collocation_scenario(
                &Scenario::named("colloc").with_mc_samples(25),
                &CollocationConfig::smolyak(2),
            )
            .unwrap();
        assert_eq!(report.label, "colloc");
        assert!(
            report.report.errors.avg_mean_error_percent < 1.0,
            "collocation disagrees with Monte Carlo: {} %VDD",
            report.report.errors.avg_mean_error_percent
        );
    }

    #[test]
    fn netlist_engines_carry_node_names_and_deck_transients() {
        let deck = "\
* star of four nodes behind one pad
VDD p 0 1.0
Rpad p hub 0.1
Rw1 hub leaf_a 0.5
Rw2 hub leaf_b 0.5
Rv3 hub leaf_c 0.5
C1 hub 0 4f class=gate
C2 leaf_a 0 2f
C3 leaf_b 0 2f
C4 leaf_c 0 2f
I1 leaf_c 0 PWL(0 0 0.5n 2m 1n 0) block=1
.tran 0.25n 1n method=trbdf2
";
        let engine = OperaEngine::for_netlist_str(deck)
            .unwrap()
            .mc_samples(5)
            .build()
            .unwrap();
        // Deck `.tran` became the engine defaults, including the scheme.
        assert_eq!(engine.transient().time_step, 0.25e-9);
        assert_eq!(engine.transient().end_time, 1e-9);
        assert_eq!(engine.transient().method, IntegrationMethod::TrBdf2);
        // Names round-trip both ways; the unnamed fallback label works too.
        assert_eq!(engine.node_count(), 4);
        assert_eq!(engine.node_index("leaf_c"), Some(3));
        assert_eq!(engine.node_name(0), Some("hub"));
        assert_eq!(engine.node_label(3), "leaf_c");
        assert_eq!(engine.node_name(99), None);
        assert_eq!(engine.node_label(99), "#99");
        // The worst drop is at the loaded leaf, by name.
        let solution = engine.solve().unwrap();
        let (node, _, drop) = solution.worst_mean_drop(engine.grid().vdd());
        assert_eq!(engine.node_label(node), "leaf_c");
        assert!(drop > 0.0);
        // Grid-built engines have no names.
        let plain = quick_engine();
        assert!(plain.node_map().is_none());
        assert_eq!(plain.node_label(0), "#0");
    }

    #[test]
    fn netlist_errors_surface_with_spans() {
        let Err(err) = OperaEngine::for_netlist_str("VDD p 0 1.2\nR1 p n1 bogus\n") else {
            panic!("a malformed deck must not build");
        };
        let OperaError::Netlist(inner) = &err else {
            panic!("expected a netlist error, got {err}");
        };
        assert_eq!(inner.line(), Some(2));
        assert!(OperaEngine::for_netlist("/no/such/deck.sp").is_err());
    }

    #[test]
    fn engine_can_be_built_from_a_prebuilt_model_and_named_solver() {
        let grid = GridSpec::small_test(90).with_seed(3).build().unwrap();
        let model =
            StochasticGridModel::inter_die_three_variable(&grid, &VariationSpec::paper_defaults())
                .unwrap();
        let engine = OperaEngine::for_model(model)
            .time_step(0.25e-9)
            .end_time(1.0e-9)
            .solver_name(BLOCK_JACOBI_CG)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(engine.solver().name(), BLOCK_JACOBI_CG);
        // Three variables at order 2: C(3+2, 2) = 10 basis functions.
        assert_eq!(engine.basis_size(), 10);
        let sol = engine.solve().unwrap();
        let (_, k, drop) = sol.worst_mean_drop(engine.grid().vdd());
        assert!(drop > 0.0 && k > 0);
    }
}
