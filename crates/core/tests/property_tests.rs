//! Property-based tests of the OPERA solvers: invariants that must hold for
//! any admissible variation magnitude, expansion order and time step.

use proptest::prelude::*;

use opera::special_case::{solve_leakage, SpecialCaseOptions};
use opera::stochastic::{solve, OperaOptions};
use opera::transient::{solve_transient, TransientOptions};
use opera_grid::GridSpec;
use opera_variation::{LeakageModel, StochasticGridModel, VariationSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any admissible variation magnitude the stochastic mean stays close
    /// to the deterministic nominal solution and the variance grows
    /// monotonically with the variation (checked at the worst-drop node).
    #[test]
    fn mean_tracks_nominal_and_variance_grows(scale in 0.2f64..1.0, seed in 0u64..50) {
        let grid = GridSpec::small_test(90).with_seed(seed).build().unwrap();
        let topts = TransientOptions::new(0.2e-9, 1.0e-9);
        let spec_small = VariationSpec {
            width_3sigma: 0.10 * scale,
            thickness_3sigma: 0.075 * scale,
            channel_length_3sigma: 0.10 * scale,
            ..VariationSpec::paper_defaults()
        };
        let spec_large = VariationSpec {
            width_3sigma: 0.20 * scale,
            thickness_3sigma: 0.15 * scale,
            channel_length_3sigma: 0.20 * scale,
            ..VariationSpec::paper_defaults()
        };
        let solve_for = |spec: &VariationSpec| {
            let model = StochasticGridModel::inter_die(&grid, spec).unwrap();
            solve(&model, &OperaOptions::order2(topts)).unwrap()
        };
        let small = solve_for(&spec_small);
        let large = solve_for(&spec_large);
        let nominal = solve_transient(
            &grid.conductance_matrix(),
            &grid.capacitance_matrix(),
            |t| grid.excitation(t),
            &topts,
        )
        .unwrap();
        let (node, k, _) = large.worst_mean_drop(grid.vdd());
        prop_assert!(
            (large.mean_at(k, node) - nominal.state_at(k)[node]).abs() / grid.vdd() < 0.02
        );
        prop_assert!(large.std_dev_at(k, node) >= small.std_dev_at(k, node));
    }

    /// The zeroth PCE coefficient of the stochastic solution at t = 0 solves
    /// the DC system, and every coefficient stays finite over the transient.
    #[test]
    fn solution_is_finite_and_consistent_at_dc(seed in 0u64..40, order in 1u32..4) {
        let grid = GridSpec::small_test(70).with_seed(seed).build().unwrap();
        let model = StochasticGridModel::inter_die(&grid, &VariationSpec::paper_defaults()).unwrap();
        let topts = TransientOptions::new(0.25e-9, 0.5e-9);
        let sol = solve(&model, &OperaOptions::with_order(order, topts)).unwrap();
        for k in 0..sol.times().len() {
            for i in 0..sol.basis_size() {
                for node in (0..sol.node_count()).step_by(11) {
                    prop_assert!(sol.coefficient(k, i, node).is_finite());
                }
            }
        }
        // At t = 0 the currents are zero, so every node sits near VDD and the
        // spread is tiny compared to the supply.
        for node in (0..sol.node_count()).step_by(13) {
            prop_assert!((grid.vdd() - sol.mean_at(0, node)) / grid.vdd() < 0.05);
            prop_assert!(sol.std_dev_at(0, node) / grid.vdd() < 0.05);
        }
    }

    /// The special case and the general Galerkin machinery agree when the
    /// matrices are deterministic: solving the leakage problem with two
    /// different orders gives the same mean (the mean only depends on the
    /// order-0 projection, which both truncations contain).
    #[test]
    fn special_case_mean_is_order_independent(seed in 0u64..30) {
        let grid = GridSpec::small_test(60).with_seed(seed).build().unwrap();
        let leakage = LeakageModel::uniform_slices(grid.node_count(), 2, 2.0e-5, 0.03, 23.0).unwrap();
        let topts = TransientOptions::new(0.25e-9, 0.5e-9);
        let sol2 = solve_leakage(&grid, &leakage, &SpecialCaseOptions { order: 2, transient: topts }).unwrap();
        let sol3 = solve_leakage(&grid, &leakage, &SpecialCaseOptions { order: 3, transient: topts }).unwrap();
        let k = sol2.times().len() - 1;
        for node in (0..grid.node_count()).step_by(7) {
            prop_assert!((sol2.mean_at(k, node) - sol3.mean_at(k, node)).abs() < 1e-6);
        }
    }
}
