//! Property-based tests of the process-variation models.

use proptest::prelude::*;

use opera_grid::GridSpec;
use opera_pce::{GalerkinCoupling, OrthogonalBasis, PolynomialFamily};
use opera_variation::{correlation, LeakageModel, StochasticGridModel, VariationSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The sampled matrices are affine in ξ: G(αξ) − G(0) = α (G(ξ) − G(0)).
    #[test]
    fn sampled_matrices_are_affine(
        xi_g in -3.0f64..3.0,
        xi_l in -3.0f64..3.0,
        alpha in 0.1f64..2.0,
    ) {
        let grid = GridSpec::small_test(80).with_seed(5).build().unwrap();
        let model = StochasticGridModel::inter_die(&grid, &VariationSpec::paper_defaults()).unwrap();
        let base = model.sample_conductance(&[0.0, 0.0]).unwrap();
        let at = model.sample_conductance(&[xi_g, xi_l]).unwrap();
        let at_scaled = model.sample_conductance(&[alpha * xi_g, alpha * xi_l]).unwrap();
        let delta = at.add_scaled(&base, -1.0).unwrap();
        let delta_scaled = at_scaled.add_scaled(&base, -1.0).unwrap();
        let diff = delta_scaled.add_scaled(&delta.scaled(alpha), -1.0).unwrap();
        prop_assert!(diff.frobenius_norm() < 1e-9 * base.frobenius_norm());
    }

    /// For any admissible variation spec, the ±3σ conductance excursion keeps
    /// the sampled matrix positive definite (Cholesky succeeds).
    #[test]
    fn three_sigma_samples_remain_positive_definite(
        w3 in 0.0f64..0.3,
        t3 in 0.0f64..0.3,
        l3 in 0.0f64..0.3,
        sign in prop_oneof![Just(-1.0f64), Just(1.0f64)],
    ) {
        let spec = VariationSpec {
            width_3sigma: w3,
            thickness_3sigma: t3,
            channel_length_3sigma: l3,
            ..VariationSpec::paper_defaults()
        };
        prop_assume!(spec.validate().is_ok());
        let grid = GridSpec::small_test(70).with_seed(2).build().unwrap();
        let model = StochasticGridModel::inter_die(&grid, &spec).unwrap();
        let g = model.sample_conductance(&[3.0 * sign, 3.0 * sign]).unwrap();
        prop_assert!(opera_sparse::CholeskyFactor::factor(&g).is_ok());
    }

    /// Leakage projections: the coefficient on the constant basis function is
    /// the lognormal mean, and every region's nodes share the same projection
    /// profile scaled by their nominal currents.
    #[test]
    fn leakage_projection_scales_with_nominal_current(
        sigma in 0.0f64..0.06,
        i0 in 1e-7f64..1e-4,
    ) {
        let model = LeakageModel::uniform_slices(12, 2, i0, sigma, 23.0).unwrap();
        let basis = OrthogonalBasis::total_order(PolynomialFamily::Hermite, 2, 2).unwrap();
        let coupling = GalerkinCoupling::new(&basis).unwrap();
        let inj = model.projected_injections(&basis, &coupling).unwrap();
        let s: f64 = 23.0 * sigma;
        let mean = i0 * (0.5 * s * s).exp();
        prop_assert!((inj[0][0] - mean).abs() < 5e-3 * mean);
        // All nodes of region 0 have identical projections (same nominal current).
        for row in inj.iter().take(basis.len()) {
            for node in 0..6 {
                prop_assert!((row[node] - row[0]).abs() < 1e-18 + 1e-12 * row[0].abs());
            }
        }
    }

    /// PCA decorrelation: eigenvalues are non-negative for valid covariance
    /// matrices and their sum equals the trace.
    #[test]
    fn decorrelation_preserves_total_variance(
        v1 in 0.1f64..2.0,
        v2 in 0.1f64..2.0,
        rho in -0.95f64..0.95,
    ) {
        let c12 = rho * (v1 * v2).sqrt();
        let d = correlation::decorrelate(2, &[v1, c12, c12, v2]).unwrap();
        let total: f64 = d.variances.iter().sum();
        prop_assert!((total - (v1 + v2)).abs() < 1e-9);
        prop_assert!(d.variances.iter().all(|&v| v >= -1e-12));
        prop_assert!(d.variances[0] >= d.variances[1]);
    }

    /// Samples of leakage currents are always positive and their empirical
    /// mean approaches the analytic lognormal mean.
    #[test]
    fn leakage_sampling_matches_lognormal_mean(sigma in 0.0f64..0.05, seed in 0u64..100) {
        use rand::{Rng, SeedableRng};
        let model = LeakageModel::uniform_slices(4, 2, 1e-6, sigma, 23.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut acc = 0.0;
        let n = 4000;
        for _ in 0..n {
            let xi: Vec<f64> = (0..2)
                .map(|_| {
                    let u1: f64 = rng.gen::<f64>().max(1e-12);
                    let u2: f64 = rng.gen();
                    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
                })
                .collect();
            let leak = model.sample_leakage(&xi);
            prop_assert!(leak.iter().all(|&v| v > 0.0));
            acc += leak[0];
        }
        let s: f64 = 23.0 * sigma;
        let analytic = 1e-6 * (0.5 * s * s).exp();
        let empirical = acc / n as f64;
        prop_assert!((empirical - analytic).abs() < 0.1 * analytic + 1e-9);
    }
}
