//! Error type for variation-model construction.

use std::error::Error;
use std::fmt;

/// Errors produced while building process-variation models.
#[derive(Debug, Clone, PartialEq)]
pub enum VariationError {
    /// A variation specification is non-physical (negative sigma, …).
    InvalidSpec {
        /// Explanation of the problem.
        reason: String,
    },
    /// A node or region index is out of bounds.
    IndexOutOfBounds {
        /// Description of the offending index.
        reason: String,
    },
    /// An underlying linear-algebra operation failed.
    Numerical {
        /// Description of the failure.
        reason: String,
    },
}

impl fmt::Display for VariationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VariationError::InvalidSpec { reason } => {
                write!(f, "invalid variation specification: {reason}")
            }
            VariationError::IndexOutOfBounds { reason } => {
                write!(f, "index out of bounds: {reason}")
            }
            VariationError::Numerical { reason } => write!(f, "numerical failure: {reason}"),
        }
    }
}

impl Error for VariationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = VariationError::InvalidSpec {
            reason: "negative sigma".to_string(),
        };
        assert!(e.to_string().contains("negative sigma"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VariationError>();
    }
}
