//! Decorrelation of correlated process parameters.
//!
//! The paper assumes the variation variables are uncorrelated and notes that
//! correlated parameters "can always be transformed into a set of
//! uncorrelated random variables by an orthogonal transformation technique
//! like principal component analysis". This module provides that
//! transformation for the small covariance matrices involved (a handful of
//! process parameters), using a cyclic Jacobi eigenvalue iteration.

use opera_sparse::DenseMatrix;

use crate::{Result, VariationError};

/// Result of a principal-component decorrelation of a covariance matrix
/// `Σ = V·diag(λ)·Vᵀ`.
#[derive(Debug, Clone)]
pub struct Decorrelation {
    /// Eigenvalues (variances of the principal components), descending.
    pub variances: Vec<f64>,
    /// Orthonormal eigenvectors as columns: `components[(i, k)]` is the
    /// weight of original parameter `i` in principal component `k`.
    pub components: DenseMatrix,
}

impl Decorrelation {
    /// Maps a vector of independent *standard* principal-component samples
    /// `η` back to correlated parameter deviations `x = V·diag(√λ)·η`.
    ///
    /// # Panics
    ///
    /// Panics if `eta.len()` does not match the number of components.
    pub fn correlate(&self, eta: &[f64]) -> Vec<f64> {
        assert_eq!(eta.len(), self.variances.len(), "component count mismatch");
        let n = self.variances.len();
        let mut x = vec![0.0; n];
        for (i, xi) in x.iter_mut().enumerate() {
            for (k, (&variance, &eta_k)) in self.variances.iter().zip(eta).enumerate() {
                *xi += self.components[(i, k)] * variance.max(0.0).sqrt() * eta_k;
            }
        }
        x
    }

    /// Number of principal components retained to explain at least
    /// `fraction` of the total variance.
    pub fn components_for_variance(&self, fraction: f64) -> usize {
        let total: f64 = self.variances.iter().sum();
        if total <= 0.0 {
            return 0;
        }
        let mut acc = 0.0;
        for (k, v) in self.variances.iter().enumerate() {
            acc += v;
            if acc / total >= fraction {
                return k + 1;
            }
        }
        self.variances.len()
    }
}

/// Performs the PCA decorrelation of a symmetric covariance matrix given in
/// row-major order.
///
/// # Errors
///
/// Returns [`VariationError::InvalidSpec`] for a non-square or asymmetric
/// input.
///
/// # Example
///
/// ```
/// use opera_variation::correlation::decorrelate;
///
/// # fn main() -> Result<(), opera_variation::VariationError> {
/// // Two fully correlated parameters collapse onto one component.
/// let d = decorrelate(2, &[1.0, 1.0, 1.0, 1.0])?;
/// assert!((d.variances[0] - 2.0).abs() < 1e-12);
/// assert!(d.variances[1].abs() < 1e-12);
/// assert_eq!(d.components_for_variance(0.99), 1);
/// # Ok(())
/// # }
/// ```
pub fn decorrelate(n: usize, covariance: &[f64]) -> Result<Decorrelation> {
    if covariance.len() != n * n {
        return Err(VariationError::InvalidSpec {
            reason: format!(
                "covariance has {} entries, expected {}",
                covariance.len(),
                n * n
            ),
        });
    }
    // Symmetry check.
    for i in 0..n {
        for j in 0..n {
            if (covariance[i * n + j] - covariance[j * n + i]).abs()
                > 1e-10 * covariance[i * n + i].abs().max(1.0)
            {
                return Err(VariationError::InvalidSpec {
                    reason: format!("covariance matrix is not symmetric at ({i}, {j})"),
                });
            }
        }
    }
    let (eigenvalues, eigenvectors) = jacobi_eigen(n, covariance);
    // Sort descending by eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| eigenvalues[b].total_cmp(&eigenvalues[a]));
    let variances: Vec<f64> = order.iter().map(|&k| eigenvalues[k]).collect();
    let mut components = DenseMatrix::zeros(n, n);
    for (new_k, &old_k) in order.iter().enumerate() {
        for i in 0..n {
            components[(i, new_k)] = eigenvectors[(i, old_k)];
        }
    }
    Ok(Decorrelation {
        variances,
        components,
    })
}

/// Cyclic Jacobi eigenvalue iteration for small symmetric matrices.
/// Returns `(eigenvalues, eigenvector_columns)`.
fn jacobi_eigen(n: usize, matrix: &[f64]) -> (Vec<f64>, DenseMatrix) {
    let mut a = matrix.to_vec();
    let mut v = DenseMatrix::identity(n);
    let idx = |i: usize, j: usize| i * n + j;
    for _sweep in 0..100 {
        // Largest off-diagonal magnitude.
        let mut off = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off = off.max(a[idx(i, j)].abs());
            }
        }
        if off < 1e-14 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[idx(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = a[idx(p, p)];
                let aqq = a[idx(q, q)];
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation to A (both sides).
                for k in 0..n {
                    let akp = a[idx(k, p)];
                    let akq = a[idx(k, q)];
                    a[idx(k, p)] = c * akp - s * akq;
                    a[idx(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[idx(p, k)];
                    let aqk = a[idx(q, k)];
                    a[idx(p, k)] = c * apk - s * aqk;
                    a[idx(q, k)] = s * apk + c * aqk;
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    let eigenvalues = (0..n).map(|i| a[idx(i, i)]).collect();
    (eigenvalues, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_covariance_is_already_decorrelated() {
        let d = decorrelate(3, &[4.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 9.0]).unwrap();
        assert!((d.variances[0] - 9.0).abs() < 1e-12);
        assert!((d.variances[1] - 4.0).abs() < 1e-12);
        assert!((d.variances[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlated_pair_has_known_eigenstructure() {
        // Cov = [[1, ρ], [ρ, 1]] has eigenvalues 1 ± ρ.
        let rho = 0.6;
        let d = decorrelate(2, &[1.0, rho, rho, 1.0]).unwrap();
        assert!((d.variances[0] - (1.0 + rho)).abs() < 1e-12);
        assert!((d.variances[1] - (1.0 - rho)).abs() < 1e-12);
    }

    #[test]
    fn correlate_reproduces_covariance_statistically() {
        use rand::{Rng, SeedableRng};
        let rho = -0.4;
        let cov = [1.0, rho, rho, 1.0];
        let d = decorrelate(2, &cov).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let n = 50_000;
        let mut sum = [0.0; 3]; // xx, yy, xy
        for _ in 0..n {
            let eta: Vec<f64> = (0..2)
                .map(|_| {
                    // Box–Muller standard normal.
                    let u1: f64 = rng.gen::<f64>().max(1e-12);
                    let u2: f64 = rng.gen();
                    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
                })
                .collect();
            let x = d.correlate(&eta);
            sum[0] += x[0] * x[0];
            sum[1] += x[1] * x[1];
            sum[2] += x[0] * x[1];
        }
        let nf = n as f64;
        assert!((sum[0] / nf - 1.0).abs() < 0.05);
        assert!((sum[1] / nf - 1.0).abs() < 0.05);
        assert!((sum[2] / nf - rho).abs() < 0.05);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let cov = [2.0, 0.5, 0.1, 0.5, 1.5, 0.3, 0.1, 0.3, 1.0];
        let d = decorrelate(3, &cov).unwrap();
        let vt = d.components.transpose();
        let prod = vt.matmul(&d.components);
        let eye = DenseMatrix::identity(3);
        assert!(prod.max_abs_diff(&eye) < 1e-10);
    }

    #[test]
    fn invalid_covariances_are_rejected() {
        assert!(decorrelate(2, &[1.0, 0.0, 0.0]).is_err());
        assert!(decorrelate(2, &[1.0, 0.5, -0.5, 1.0]).is_err());
    }
}
