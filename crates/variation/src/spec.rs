//! Specification of process-variation magnitudes.

use crate::{Result, VariationError};

/// Magnitudes of the (inter-die) process variations, expressed as the
/// maximum 3σ relative deviation of each physical parameter — exactly the
/// way the paper states them ("maximum 3σ variations of 20 % in ξW, 15 % in
/// ξT (hence 25 % in ξG) and 20 % in ξL").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationSpec {
    /// 3σ relative variation of the interconnect width `W`.
    pub width_3sigma: f64,
    /// 3σ relative variation of the interconnect thickness `T`.
    pub thickness_3sigma: f64,
    /// 3σ relative variation of the device channel length `Leff`.
    pub channel_length_3sigma: f64,
    /// Sensitivity of the block drain currents to `Leff`: relative current
    /// change per unit relative `Leff` change (first-order model; the paper
    /// uses a linear expansion of `i(s)` in `ξ_L`).
    pub drain_current_sensitivity: f64,
    /// Whether the pad (supply-connection) conductances also vary with
    /// `ξ_G`. The paper's formulation perturbs the whole `G` matrix and the
    /// `G₁·VDD` excitation term together; set to `false` to hold the package
    /// resistance fixed.
    pub include_pad_variation: bool,
}

impl VariationSpec {
    /// The variation magnitudes used in the paper's experiments
    /// (Section 6): 20 % / 15 % / 20 % at 3σ, linear current model.
    pub fn paper_defaults() -> Self {
        VariationSpec {
            width_3sigma: 0.20,
            thickness_3sigma: 0.15,
            channel_length_3sigma: 0.20,
            drain_current_sensitivity: 1.0,
            include_pad_variation: true,
        }
    }

    /// A spec with no variation at all (useful as a control case).
    pub fn none() -> Self {
        VariationSpec {
            width_3sigma: 0.0,
            thickness_3sigma: 0.0,
            channel_length_3sigma: 0.0,
            drain_current_sensitivity: 0.0,
            include_pad_variation: false,
        }
    }

    /// Per-unit (1σ) relative standard deviation of the width.
    pub fn sigma_width(&self) -> f64 {
        self.width_3sigma / 3.0
    }

    /// Per-unit (1σ) relative standard deviation of the thickness.
    pub fn sigma_thickness(&self) -> f64 {
        self.thickness_3sigma / 3.0
    }

    /// Per-unit (1σ) relative standard deviation of the channel length.
    pub fn sigma_channel_length(&self) -> f64 {
        self.channel_length_3sigma / 3.0
    }

    /// Per-unit (1σ) relative standard deviation of the combined conductance
    /// variable `ξ_G`. With the linear model `G ∝ W·T`, the relative
    /// conductance deviation is the sum of two independent Gaussians, so the
    /// variances add (paper: 20 % and 15 % at 3σ combine to 25 % at 3σ).
    pub fn sigma_conductance(&self) -> f64 {
        (self.sigma_width().powi(2) + self.sigma_thickness().powi(2)).sqrt()
    }

    /// 3σ relative deviation of the combined conductance variable.
    pub fn conductance_3sigma(&self) -> f64 {
        3.0 * self.sigma_conductance()
    }

    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns [`VariationError::InvalidSpec`] for negative or non-finite
    /// magnitudes, or variations large enough to make conductances go
    /// negative within ±4σ (which would break positive definiteness).
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("width_3sigma", self.width_3sigma),
            ("thickness_3sigma", self.thickness_3sigma),
            ("channel_length_3sigma", self.channel_length_3sigma),
        ] {
            if v < 0.0 || !v.is_finite() {
                return Err(VariationError::InvalidSpec {
                    reason: format!("{name} must be non-negative and finite, got {v}"),
                });
            }
            if v >= 0.60 {
                return Err(VariationError::InvalidSpec {
                    reason: format!(
                        "{name} = {v} is too large: ±4σ excursions would make parameters negative"
                    ),
                });
            }
        }
        if !self.drain_current_sensitivity.is_finite() {
            return Err(VariationError::InvalidSpec {
                reason: "drain_current_sensitivity must be finite".to_string(),
            });
        }
        Ok(())
    }
}

impl Default for VariationSpec {
    fn default() -> Self {
        VariationSpec::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_combine_to_25_percent() {
        let spec = VariationSpec::paper_defaults();
        assert!((spec.conductance_3sigma() - 0.25).abs() < 1e-12);
        assert!((spec.sigma_conductance() - 0.25 / 3.0).abs() < 1e-12);
        spec.validate().unwrap();
    }

    #[test]
    fn none_spec_has_zero_sigmas() {
        let spec = VariationSpec::none();
        assert_eq!(spec.sigma_conductance(), 0.0);
        assert_eq!(spec.sigma_channel_length(), 0.0);
        spec.validate().unwrap();
    }

    #[test]
    fn out_of_range_values_are_rejected() {
        let mut spec = VariationSpec::paper_defaults();
        spec.width_3sigma = -0.1;
        assert!(spec.validate().is_err());
        let mut spec = VariationSpec::paper_defaults();
        spec.channel_length_3sigma = 0.9;
        assert!(spec.validate().is_err());
        let mut spec = VariationSpec::paper_defaults();
        spec.drain_current_sensitivity = f64::NAN;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn default_is_paper_defaults() {
        assert_eq!(VariationSpec::default(), VariationSpec::paper_defaults());
    }
}
