//! Process-variation models for stochastic power-grid analysis.
//!
//! The OPERA paper models manufacturing variations in interconnect width
//! (`W`), interconnect thickness (`T`) and device channel length (`Leff`) as
//! Gaussian random variables that perturb the grid's electrical parameters:
//!
//! * the conductance matrix `G` varies with `W` and `T` (combined into a
//!   single variable `ξ_G`, paper Eq. 14),
//! * 40 % of the grid capacitance (the gate capacitance) varies with `Leff`
//!   (`ξ_L`),
//! * the drain currents — and therefore the excitation — vary with `Leff`,
//!   and the pad portion of the excitation varies with `ξ_G`.
//!
//! This crate turns a deterministic [`opera_grid::PowerGrid`] plus a
//! [`VariationSpec`] into a [`StochasticGridModel`]: the collection of
//! nominal and perturbation matrices/vectors of paper Eq. (13)–(14), ready
//! for either the spectral Galerkin solver or Monte Carlo sampling.
//!
//! The special case of Section 5.1 of the paper — variations only in the
//! right-hand side caused by per-region threshold-voltage (leakage)
//! variations — is covered by [`LeakageModel`].
//!
//! # Example
//!
//! ```
//! use opera_grid::GridSpec;
//! use opera_variation::{StochasticGridModel, VariationSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let grid = GridSpec::small_test(200).build()?;
//! let model = StochasticGridModel::inter_die(&grid, &VariationSpec::paper_defaults())?;
//! assert_eq!(model.n_vars(), 2); // ξ_G and ξ_L
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
mod leakage;
mod model;
mod spec;

pub mod correlation;

pub use error::VariationError;
pub use leakage::LeakageModel;
pub use model::{StochasticGridModel, VariationVariable};
pub use spec::VariationSpec;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, VariationError>;
