//! The stochastic grid model: nominal matrices plus per-variable
//! perturbations (paper Eqs. 13–14).

use opera_grid::{BranchKind, CapacitorClass, PowerGrid};
use opera_pce::PolynomialFamily;
use opera_sparse::CsrMatrix;

use crate::{Result, VariationError, VariationSpec};

/// One normalised random variable of the stochastic model.
#[derive(Debug, Clone, PartialEq)]
pub struct VariationVariable {
    /// Human-readable name (`"xi_G"`, `"xi_L"`, `"xi_Vth[0]"`, …).
    pub name: String,
    /// Orthogonal polynomial family matching the variable's distribution.
    pub family: PolynomialFamily,
}

/// A power grid whose electrical parameters are affine functions of a small
/// set of normalised random variables:
///
/// ```text
/// G(ξ) = G_a + Σ_d G_d ξ_d,   C(ξ) = C_a + Σ_d C_d ξ_d,
/// u(t, ξ) = u_a(t) + Σ_d u_d(t) ξ_d
/// ```
///
/// This is exactly the first-order (linear) parameter model of the paper
/// (Eq. 13 after the ξ_W/ξ_T combination of Eq. 14). The model retains the
/// underlying [`PowerGrid`] so the time-dependent excitation can be evaluated
/// at arbitrary time points.
#[derive(Debug, Clone)]
pub struct StochasticGridModel {
    grid: PowerGrid,
    variables: Vec<VariationVariable>,
    ga: CsrMatrix,
    ca: CsrMatrix,
    g_pert: Vec<CsrMatrix>,
    c_pert: Vec<CsrMatrix>,
    /// Constant (pad) part of the excitation perturbations.
    pad_nominal: Vec<f64>,
    pad_pert: Vec<Vec<f64>>,
    /// Multiplier applied to the nominal drain currents for each variable
    /// (`u_d(t)` includes `− current_sens[d] · i(t)`).
    current_sens: Vec<f64>,
}

impl StochasticGridModel {
    /// Builds the two-variable inter-die model of the paper: `ξ_G` perturbs
    /// the metal conductances (and, optionally, the pad injection), `ξ_L`
    /// perturbs the gate capacitance and the drain currents.
    ///
    /// # Errors
    ///
    /// Returns [`VariationError::InvalidSpec`] if the spec fails validation.
    pub fn inter_die(grid: &PowerGrid, spec: &VariationSpec) -> Result<Self> {
        spec.validate()?;
        let sigma_g = spec.sigma_conductance();
        let sigma_l = spec.sigma_channel_length();

        let ga = grid.conductance_matrix();
        let ca = grid.capacitance_matrix();

        // ξ_G: all on-die metal (wires and vias) scales linearly; package pads
        // are included only if requested.
        let include_pads = spec.include_pad_variation;
        let gg = grid.conductance_matrix_weighted(|b| match b.kind {
            BranchKind::MetalWire | BranchKind::Via => sigma_g,
            BranchKind::PackagePad => {
                if include_pads {
                    sigma_g
                } else {
                    0.0
                }
            }
        });
        // ξ_L: only the gate capacitance varies (≈40 % of the total).
        let cc = grid.capacitance_matrix_weighted(|c| match c.class {
            CapacitorClass::Gate => sigma_l,
            _ => 0.0,
        });

        let pad_nominal = grid.pad_injection_vector();
        let pad_g = if include_pads {
            grid.pad_injection_weighted(|_| sigma_g)
        } else {
            vec![0.0; grid.node_count()]
        };
        let pad_l = vec![0.0; grid.node_count()];

        let variables = vec![
            VariationVariable {
                name: "xi_G".to_string(),
                family: PolynomialFamily::Hermite,
            },
            VariationVariable {
                name: "xi_L".to_string(),
                family: PolynomialFamily::Hermite,
            },
        ];

        Ok(StochasticGridModel {
            grid: grid.clone(),
            variables,
            ga,
            ca,
            g_pert: vec![gg, CsrMatrix::zeros(grid.node_count(), grid.node_count())],
            c_pert: vec![CsrMatrix::zeros(grid.node_count(), grid.node_count()), cc],
            pad_nominal,
            pad_pert: vec![pad_g, pad_l],
            current_sens: vec![0.0, spec.drain_current_sensitivity * sigma_l],
        })
    }

    /// Builds a three-variable model that keeps `ξ_W`, `ξ_T` and `ξ_L`
    /// separate instead of combining the first two into `ξ_G` — useful for
    /// the ablation study on the number of random variables.
    ///
    /// # Errors
    ///
    /// Returns [`VariationError::InvalidSpec`] if the spec fails validation.
    pub fn inter_die_three_variable(grid: &PowerGrid, spec: &VariationSpec) -> Result<Self> {
        spec.validate()?;
        let sigma_w = spec.sigma_width();
        let sigma_t = spec.sigma_thickness();
        let sigma_l = spec.sigma_channel_length();
        let include_pads = spec.include_pad_variation;

        let ga = grid.conductance_matrix();
        let ca = grid.capacitance_matrix();
        let metal_weight = |sigma: f64| {
            move |b: &opera_grid::ResistiveBranch| match b.kind {
                BranchKind::MetalWire | BranchKind::Via => sigma,
                BranchKind::PackagePad => {
                    if include_pads {
                        sigma
                    } else {
                        0.0
                    }
                }
            }
        };
        let gw = grid.conductance_matrix_weighted(metal_weight(sigma_w));
        let gt = grid.conductance_matrix_weighted(metal_weight(sigma_t));
        let cc = grid.capacitance_matrix_weighted(|c| match c.class {
            CapacitorClass::Gate => sigma_l,
            _ => 0.0,
        });
        let zero = CsrMatrix::zeros(grid.node_count(), grid.node_count());

        let pad_w = if include_pads {
            grid.pad_injection_weighted(|_| sigma_w)
        } else {
            vec![0.0; grid.node_count()]
        };
        let pad_t = if include_pads {
            grid.pad_injection_weighted(|_| sigma_t)
        } else {
            vec![0.0; grid.node_count()]
        };

        Ok(StochasticGridModel {
            grid: grid.clone(),
            variables: vec![
                VariationVariable {
                    name: "xi_W".to_string(),
                    family: PolynomialFamily::Hermite,
                },
                VariationVariable {
                    name: "xi_T".to_string(),
                    family: PolynomialFamily::Hermite,
                },
                VariationVariable {
                    name: "xi_L".to_string(),
                    family: PolynomialFamily::Hermite,
                },
            ],
            ga,
            ca,
            g_pert: vec![gw, gt, zero.clone()],
            c_pert: vec![zero.clone(), zero, cc],
            pad_nominal: grid.pad_injection_vector(),
            pad_pert: vec![pad_w, pad_t, vec![0.0; grid.node_count()]],
            current_sens: vec![0.0, 0.0, spec.drain_current_sensitivity * sigma_l],
        })
    }

    /// Builds an intra-die model: the die is split into `regions` slices
    /// (by node index, mirroring [`crate::LeakageModel::uniform_slices`]'s
    /// convention) and each slice gets its own conductance variable
    /// `ξ_G[r]`, while the channel-length variable `ξ_L` remains shared
    /// (gate capacitance and drain currents track the die-wide `Leff`).
    ///
    /// This extends the paper's inter-die experiments toward the spatial
    /// (intra-die) stochastic processes described in its Section 3; the
    /// number of random variables becomes `regions + 1`.
    ///
    /// # Errors
    ///
    /// Returns [`VariationError::InvalidSpec`] for an invalid spec or
    /// `regions == 0`.
    pub fn intra_die_slices(
        grid: &PowerGrid,
        spec: &VariationSpec,
        regions: usize,
    ) -> Result<Self> {
        spec.validate()?;
        if regions == 0 {
            return Err(VariationError::InvalidSpec {
                reason: "intra-die model needs at least one region".to_string(),
            });
        }
        let sigma_g = spec.sigma_conductance();
        let sigma_l = spec.sigma_channel_length();
        let include_pads = spec.include_pad_variation;
        let n = grid.node_count();
        let region_of = |node: usize| (node * regions / n).min(regions - 1);

        let ga = grid.conductance_matrix();
        let ca = grid.capacitance_matrix();
        let zero = CsrMatrix::zeros(n, n);

        let mut variables = Vec::with_capacity(regions + 1);
        let mut g_pert = Vec::with_capacity(regions + 1);
        let mut c_pert = Vec::with_capacity(regions + 1);
        let mut pad_pert = Vec::with_capacity(regions + 1);
        let mut current_sens = Vec::with_capacity(regions + 1);
        for r in 0..regions {
            // A branch belongs to region r if its first node does.
            let gg_r = grid.conductance_matrix_weighted(|b| {
                let in_region = region_of(b.a) == r;
                match b.kind {
                    BranchKind::MetalWire | BranchKind::Via if in_region => sigma_g,
                    BranchKind::PackagePad if in_region && include_pads => sigma_g,
                    _ => 0.0,
                }
            });
            let pad_r = if include_pads {
                grid.pad_injection_weighted(|b| if region_of(b.a) == r { sigma_g } else { 0.0 })
            } else {
                vec![0.0; n]
            };
            variables.push(VariationVariable {
                name: format!("xi_G[{r}]"),
                family: PolynomialFamily::Hermite,
            });
            g_pert.push(gg_r);
            c_pert.push(zero.clone());
            pad_pert.push(pad_r);
            current_sens.push(0.0);
        }
        // Shared ξ_L variable.
        variables.push(VariationVariable {
            name: "xi_L".to_string(),
            family: PolynomialFamily::Hermite,
        });
        g_pert.push(zero);
        c_pert.push(grid.capacitance_matrix_weighted(|c| match c.class {
            CapacitorClass::Gate => sigma_l,
            _ => 0.0,
        }));
        pad_pert.push(vec![0.0; n]);
        current_sens.push(spec.drain_current_sensitivity * sigma_l);

        Ok(StochasticGridModel {
            grid: grid.clone(),
            variables,
            ga,
            ca,
            g_pert,
            c_pert,
            pad_nominal: grid.pad_injection_vector(),
            pad_pert,
            current_sens,
        })
    }

    /// The underlying deterministic grid.
    pub fn grid(&self) -> &PowerGrid {
        &self.grid
    }

    /// Number of grid nodes.
    pub fn node_count(&self) -> usize {
        self.grid.node_count()
    }

    /// Number of random variables `r`.
    pub fn n_vars(&self) -> usize {
        self.variables.len()
    }

    /// Descriptions of the random variables.
    pub fn variables(&self) -> &[VariationVariable] {
        &self.variables
    }

    /// Polynomial families of the variables, in order (for basis creation).
    pub fn families(&self) -> Vec<PolynomialFamily> {
        self.variables.iter().map(|v| v.family).collect()
    }

    /// Nominal conductance matrix `G_a`.
    pub fn nominal_conductance(&self) -> &CsrMatrix {
        &self.ga
    }

    /// Nominal capacitance matrix `C_a`.
    pub fn nominal_capacitance(&self) -> &CsrMatrix {
        &self.ca
    }

    /// Conductance perturbation matrix `G_d` of variable `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn conductance_perturbation(&self, d: usize) -> &CsrMatrix {
        &self.g_pert[d]
    }

    /// Capacitance perturbation matrix `C_d` of variable `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn capacitance_perturbation(&self, d: usize) -> &CsrMatrix {
        &self.c_pert[d]
    }

    /// Nominal excitation `u_a(t)`.
    pub fn excitation_nominal(&self, t: f64) -> Vec<f64> {
        self.grid.excitation(t)
    }

    /// Excitation perturbation `u_d(t)` of variable `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn excitation_perturbation(&self, d: usize, t: f64) -> Vec<f64> {
        let mut u = self.pad_pert[d].clone();
        let sens = self.current_sens[d];
        if sens != 0.0 {
            let i = self.grid.drain_current_vector(t);
            for (u_n, i_n) in u.iter_mut().zip(&i) {
                *u_n -= sens * i_n;
            }
        }
        u
    }

    /// Constant pad part of the nominal excitation (`G₁·VDD`).
    pub fn pad_injection_nominal(&self) -> &[f64] {
        &self.pad_nominal
    }

    /// Realises the conductance matrix for a particular sample `ξ` (used by
    /// the Monte Carlo baseline).
    ///
    /// # Errors
    ///
    /// Returns [`VariationError::IndexOutOfBounds`] if `xi.len() != n_vars()`.
    pub fn sample_conductance(&self, xi: &[f64]) -> Result<CsrMatrix> {
        self.check_sample(xi)?;
        let mut g = self.ga.clone();
        for (d, &x) in xi.iter().enumerate() {
            if x != 0.0 && self.g_pert[d].nnz() > 0 {
                g = g
                    .add_scaled(&self.g_pert[d], x)
                    .map_err(|e| VariationError::Numerical {
                        reason: e.to_string(),
                    })?;
            }
        }
        Ok(g)
    }

    /// Realises the capacitance matrix for a particular sample `ξ`.
    ///
    /// # Errors
    ///
    /// Returns [`VariationError::IndexOutOfBounds`] if `xi.len() != n_vars()`.
    pub fn sample_capacitance(&self, xi: &[f64]) -> Result<CsrMatrix> {
        self.check_sample(xi)?;
        let mut c = self.ca.clone();
        for (d, &x) in xi.iter().enumerate() {
            if x != 0.0 && self.c_pert[d].nnz() > 0 {
                c = c
                    .add_scaled(&self.c_pert[d], x)
                    .map_err(|e| VariationError::Numerical {
                        reason: e.to_string(),
                    })?;
            }
        }
        Ok(c)
    }

    /// Realises the excitation vector at time `t` for a particular sample.
    ///
    /// # Errors
    ///
    /// Returns [`VariationError::IndexOutOfBounds`] if `xi.len() != n_vars()`.
    pub fn sample_excitation(&self, t: f64, xi: &[f64]) -> Result<Vec<f64>> {
        self.check_sample(xi)?;
        let mut u = self.excitation_nominal(t);
        for (d, &x) in xi.iter().enumerate() {
            if x == 0.0 {
                continue;
            }
            let ud = self.excitation_perturbation(d, t);
            for (u_n, ud_n) in u.iter_mut().zip(&ud) {
                *u_n += x * ud_n;
            }
        }
        Ok(u)
    }

    fn check_sample(&self, xi: &[f64]) -> Result<()> {
        if xi.len() != self.n_vars() {
            return Err(VariationError::IndexOutOfBounds {
                reason: format!(
                    "sample has {} coordinates, model has {} variables",
                    xi.len(),
                    self.n_vars()
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opera_grid::GridSpec;

    fn small_model() -> StochasticGridModel {
        let grid = GridSpec::small_test(150).with_seed(11).build().unwrap();
        StochasticGridModel::inter_die(&grid, &VariationSpec::paper_defaults()).unwrap()
    }

    #[test]
    fn two_variable_model_has_expected_structure() {
        let m = small_model();
        assert_eq!(m.n_vars(), 2);
        assert_eq!(m.variables()[0].name, "xi_G");
        assert_eq!(m.variables()[1].name, "xi_L");
        // ξ_G does not touch the capacitance; ξ_L does not touch the conductance.
        assert_eq!(m.conductance_perturbation(1).nnz(), 0);
        assert_eq!(m.capacitance_perturbation(0).nnz(), 0);
        assert!(m.conductance_perturbation(0).nnz() > 0);
        assert!(m.capacitance_perturbation(1).nnz() > 0);
    }

    #[test]
    fn conductance_perturbation_is_scaled_nominal_when_pads_vary() {
        // With pads included, every branch scales by σ_G, so G_g = σ_G · G_a
        // exactly (the paper's "Gb = d·Ga" observation).
        let m = small_model();
        let sigma_g = VariationSpec::paper_defaults().sigma_conductance();
        let diff = m
            .nominal_conductance()
            .scaled(sigma_g)
            .add_scaled(m.conductance_perturbation(0), -1.0)
            .unwrap();
        assert!(diff.frobenius_norm() < 1e-10 * m.nominal_conductance().frobenius_norm());
    }

    #[test]
    fn gate_capacitance_fraction_controls_cc_magnitude() {
        let m = small_model();
        let sigma_l = VariationSpec::paper_defaults().sigma_channel_length();
        let cc_total: f64 = m.capacitance_perturbation(1).diagonal().iter().sum();
        let gate_total = m.grid().capacitance_of_class(CapacitorClass::Gate);
        assert!((cc_total - sigma_l * gate_total).abs() < 1e-12 * gate_total.max(1e-30));
    }

    #[test]
    fn sampling_at_zero_returns_nominal() {
        let m = small_model();
        let g = m.sample_conductance(&[0.0, 0.0]).unwrap();
        assert_eq!(&g, m.nominal_conductance());
        let c = m.sample_capacitance(&[0.0, 0.0]).unwrap();
        assert_eq!(&c, m.nominal_capacitance());
        let u = m.sample_excitation(0.3e-9, &[0.0, 0.0]).unwrap();
        assert_eq!(u, m.excitation_nominal(0.3e-9));
    }

    #[test]
    fn sampling_shifts_matrices_linearly() {
        let m = small_model();
        let g_plus = m.sample_conductance(&[1.0, 0.0]).unwrap();
        let g_minus = m.sample_conductance(&[-1.0, 0.0]).unwrap();
        // (G(+1) + G(−1)) / 2 = G_a for a linear model.
        let avg = g_plus.add_scaled(&g_minus, 1.0).unwrap().scaled(0.5);
        let diff = avg.add_scaled(m.nominal_conductance(), -1.0).unwrap();
        assert!(diff.frobenius_norm() < 1e-9);
    }

    #[test]
    fn excitation_perturbation_tracks_drain_currents() {
        let grid = GridSpec::small_test(150).with_seed(3).build().unwrap();
        let m = StochasticGridModel::inter_die(&grid, &VariationSpec::paper_defaults()).unwrap();
        // At a time when currents flow, u_L(t) must be nonzero (current
        // sensitivity) while its pad part is zero.
        let t = 0.4e-9;
        let u_l = m.excitation_perturbation(1, t);
        let i = grid.drain_current_vector(t);
        let total_i: f64 = i.iter().sum();
        assert!(total_i > 0.0, "test needs nonzero current at t");
        let sens = VariationSpec::paper_defaults().drain_current_sensitivity
            * VariationSpec::paper_defaults().sigma_channel_length();
        for (ul, inode) in u_l.iter().zip(&i) {
            assert!((ul + sens * inode).abs() < 1e-18 + 1e-12 * inode.abs());
        }
    }

    #[test]
    fn three_variable_model_splits_width_and_thickness() {
        let grid = GridSpec::small_test(150).build().unwrap();
        let m =
            StochasticGridModel::inter_die_three_variable(&grid, &VariationSpec::paper_defaults())
                .unwrap();
        assert_eq!(m.n_vars(), 3);
        // σ_W > σ_T, so the ξ_W perturbation is larger in norm.
        assert!(
            m.conductance_perturbation(0).frobenius_norm()
                > m.conductance_perturbation(1).frobenius_norm()
        );
        // Only ξ_L perturbs the capacitance.
        assert_eq!(m.capacitance_perturbation(0).nnz(), 0);
        assert_eq!(m.capacitance_perturbation(1).nnz(), 0);
        assert!(m.capacitance_perturbation(2).nnz() > 0);
    }

    #[test]
    fn intra_die_slices_partition_the_conductance_perturbation() {
        let grid = GridSpec::small_test(150).with_seed(11).build().unwrap();
        let spec = VariationSpec::paper_defaults();
        let regions = 3;
        let intra = StochasticGridModel::intra_die_slices(&grid, &spec, regions).unwrap();
        let inter = StochasticGridModel::inter_die(&grid, &spec).unwrap();
        assert_eq!(intra.n_vars(), regions + 1);
        assert_eq!(intra.variables()[0].name, "xi_G[0]");
        assert_eq!(intra.variables()[regions].name, "xi_L");
        // The regional conductance perturbations partition the inter-die one:
        // their sum equals the single ξ_G perturbation matrix.
        let mut sum = intra.conductance_perturbation(0).clone();
        for r in 1..regions {
            sum = sum
                .add_scaled(intra.conductance_perturbation(r), 1.0)
                .unwrap();
        }
        let diff = sum
            .add_scaled(inter.conductance_perturbation(0), -1.0)
            .unwrap();
        assert!(diff.frobenius_norm() < 1e-10 * sum.frobenius_norm());
        // Per-region sampling only perturbs entries owned by that region's nodes.
        let g_r0 = intra.sample_conductance(&[1.0, 0.0, 0.0, 0.0]).unwrap();
        let last_node = grid.node_count() - 1;
        assert_eq!(
            g_r0.get(last_node, last_node),
            intra.nominal_conductance().get(last_node, last_node)
        );
        // Zero regions is rejected.
        assert!(StochasticGridModel::intra_die_slices(&grid, &spec, 0).is_err());
    }

    #[test]
    fn wrong_sample_length_is_rejected() {
        let m = small_model();
        assert!(m.sample_conductance(&[0.0]).is_err());
        assert!(m.sample_excitation(0.0, &[0.0, 0.0, 0.0]).is_err());
    }

    #[test]
    fn excluding_pad_variation_zeroes_the_pad_terms() {
        let grid = GridSpec::small_test(150).build().unwrap();
        let mut spec = VariationSpec::paper_defaults();
        spec.include_pad_variation = false;
        let m = StochasticGridModel::inter_die(&grid, &spec).unwrap();
        // u_G(t) must be identically zero (pads fixed, currents insensitive to ξ_G).
        let u_g = m.excitation_perturbation(0, 0.2e-9);
        assert!(u_g.iter().all(|&v| v == 0.0));
        // And G_g must not touch the pad diagonal contribution.
        let g_pads_only = grid.conductance_matrix_weighted(|b| {
            if b.kind == BranchKind::PackagePad {
                1.0
            } else {
                0.0
            }
        });
        // For a pad node, the perturbation diagonal must be strictly smaller
        // than σ_G times the full diagonal (since the pad part is excluded).
        let pad_node = grid.pad_nodes()[0];
        let sigma_g = spec.sigma_conductance();
        assert!(
            m.conductance_perturbation(0).get(pad_node, pad_node)
                < sigma_g * m.nominal_conductance().get(pad_node, pad_node)
                    - 0.5 * sigma_g * g_pads_only.get(pad_node, pad_node)
        );
    }
}
