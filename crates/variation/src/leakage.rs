//! Leakage-current (threshold-voltage) variation — the special case of
//! Section 5.1 of the paper.
//!
//! When only the right-hand side of the MNA equation varies (leakage currents
//! driven by per-region `Vth` variations), the Galerkin system decouples: a
//! single factorisation of the nominal `G + sC` suffices and the stochastic
//! excitation is obtained by projecting the (lognormal) leakage currents onto
//! the Hermite basis. [`LeakageModel`] builds those projected injection
//! vectors.

use opera_pce::{GalerkinCoupling, OrthogonalBasis, PolynomialFamily};

use crate::{Result, VariationError};

/// Per-region threshold-voltage variation driving lognormal leakage currents.
///
/// The chip is divided into `R` regions (the paper uses 2 in its example);
/// region `r` gets its own normalised Gaussian variable `ξ_r`. The leakage
/// current of every node in region `r` is
///
/// ```text
/// I_leak(ξ_r) = I₀ · exp(−λ · σ_Vth · ξ_r)
/// ```
///
/// i.e. lognormal, with `λ` the leakage sensitivity `∂ ln I / ∂ Vth`
/// (≈ ln 10 / S for subthreshold slope `S`).
#[derive(Debug, Clone)]
pub struct LeakageModel {
    /// `region_of_node[n]` is the region index of node `n`.
    region_of_node: Vec<usize>,
    /// Nominal (median) leakage current drawn at each node, in amperes.
    nominal_leakage: Vec<f64>,
    /// Number of regions.
    region_count: usize,
    /// Standard deviation of the threshold voltage in volts.
    sigma_vth: f64,
    /// Leakage sensitivity `λ = ∂ ln I / ∂ Vth` in 1/volts.
    sensitivity: f64,
}

impl LeakageModel {
    /// Creates a leakage model.
    ///
    /// # Errors
    ///
    /// Returns [`VariationError::InvalidSpec`] when the inputs are
    /// inconsistent (length mismatch, empty regions, negative currents or
    /// sigma).
    pub fn new(
        region_of_node: Vec<usize>,
        nominal_leakage: Vec<f64>,
        sigma_vth: f64,
        sensitivity: f64,
    ) -> Result<Self> {
        if region_of_node.len() != nominal_leakage.len() {
            return Err(VariationError::InvalidSpec {
                reason: format!(
                    "region map has {} nodes but leakage vector has {}",
                    region_of_node.len(),
                    nominal_leakage.len()
                ),
            });
        }
        if region_of_node.is_empty() {
            return Err(VariationError::InvalidSpec {
                reason: "leakage model needs at least one node".to_string(),
            });
        }
        if sigma_vth < 0.0 || !sensitivity.is_finite() || !sigma_vth.is_finite() {
            return Err(VariationError::InvalidSpec {
                reason: "sigma_vth must be non-negative and finite".to_string(),
            });
        }
        if nominal_leakage.iter().any(|&i| i < 0.0 || !i.is_finite()) {
            return Err(VariationError::InvalidSpec {
                reason: "nominal leakage currents must be non-negative and finite".to_string(),
            });
        }
        let region_count = region_of_node.iter().copied().max().unwrap_or(0) + 1;
        Ok(LeakageModel {
            region_of_node,
            nominal_leakage,
            region_count,
            sigma_vth,
            sensitivity,
        })
    }

    /// Builds a uniform leakage model on top of a grid partitioned into
    /// `regions` vertical slices, drawing `leakage_per_node` amperes of
    /// median leakage at every node.
    ///
    /// # Errors
    ///
    /// Returns [`VariationError::InvalidSpec`] if `regions == 0` or the
    /// parameters are non-physical.
    pub fn uniform_slices(
        node_count: usize,
        regions: usize,
        leakage_per_node: f64,
        sigma_vth: f64,
        sensitivity: f64,
    ) -> Result<Self> {
        if regions == 0 || node_count == 0 {
            return Err(VariationError::InvalidSpec {
                reason: "need at least one region and one node".to_string(),
            });
        }
        let region_of_node = (0..node_count)
            .map(|n| (n * regions / node_count).min(regions - 1))
            .collect();
        LeakageModel::new(
            region_of_node,
            vec![leakage_per_node; node_count],
            sigma_vth,
            sensitivity,
        )
    }

    /// Number of regions (= number of random variables of the special case).
    pub fn region_count(&self) -> usize {
        self.region_count
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.region_of_node.len()
    }

    /// Region of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn region_of(&self, node: usize) -> usize {
        self.region_of_node[node]
    }

    /// Polynomial families for the basis of the special case (all Hermite —
    /// the underlying `Vth` variations are Gaussian even though the leakage
    /// itself is lognormal).
    pub fn families(&self) -> Vec<PolynomialFamily> {
        vec![PolynomialFamily::Hermite; self.region_count]
    }

    /// Standard deviation of the threshold voltage in volts.
    pub fn sigma_vth(&self) -> f64 {
        self.sigma_vth
    }

    /// Leakage sensitivity `λ = ∂ ln I / ∂ Vth` in 1/volts.
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// Effective lognormal sigma `λ·σ_Vth` of the leakage currents.
    pub fn lognormal_sigma(&self) -> f64 {
        self.sensitivity * self.sigma_vth
    }

    /// Nominal (median) leakage current per node in amperes.
    pub fn nominal_leakage(&self) -> &[f64] {
        &self.nominal_leakage
    }

    /// Realises the leakage currents for one sample of the per-region
    /// threshold variables: `I_leak[n] = I₀[n] · exp(−λ σ ξ_{r(n)})`.
    ///
    /// # Panics
    ///
    /// Panics if `xi.len()` is smaller than the number of regions.
    pub fn sample_leakage(&self, xi: &[f64]) -> Vec<f64> {
        assert!(
            xi.len() >= self.region_count,
            "sample has {} coordinates, model has {} regions",
            xi.len(),
            self.region_count
        );
        let s = self.lognormal_sigma();
        self.nominal_leakage
            .iter()
            .zip(&self.region_of_node)
            .map(|(&i0, &r)| i0 * (-s * xi[r]).exp())
            .collect()
    }

    /// Mean leakage current per node, `E[I_leak] = I₀ · exp((λσ)²/2)`.
    pub fn mean_leakage(&self) -> Vec<f64> {
        let s = self.sensitivity * self.sigma_vth;
        let factor = (0.5 * s * s).exp();
        self.nominal_leakage.iter().map(|i| i * factor).collect()
    }

    /// Projects the per-node leakage currents onto the basis: the result
    /// `out[j][n]` is the coefficient of basis function `ψ_j` of the leakage
    /// current drawn at node `n` (paper Eq. 26, the expansion of `U(s, ξ)`).
    ///
    /// # Errors
    ///
    /// Returns [`VariationError::InvalidSpec`] if the basis does not have one
    /// variable per region.
    pub fn projected_injections(
        &self,
        basis: &OrthogonalBasis,
        coupling: &GalerkinCoupling,
    ) -> Result<Vec<Vec<f64>>> {
        if basis.n_vars() != self.region_count {
            return Err(VariationError::InvalidSpec {
                reason: format!(
                    "basis has {} variables but the leakage model has {} regions",
                    basis.n_vars(),
                    self.region_count
                ),
            });
        }
        let n = self.node_count();
        let size = basis.len();
        // The lognormal factor exp(−λ σ ξ_r) depends only on the region
        // variable; project it once per region.
        let lambda = -self.sensitivity * self.sigma_vth;
        let mut region_coeffs = Vec::with_capacity(self.region_count);
        for r in 0..self.region_count {
            let coeffs = coupling.project(|xi| (lambda * xi[r]).exp());
            region_coeffs.push(coeffs);
        }
        let mut out = vec![vec![0.0; n]; size];
        for (node, &i0) in self.nominal_leakage.iter().enumerate() {
            let r = self.region_of_node[node];
            if i0 == 0.0 {
                continue;
            }
            for (row, coeff) in out.iter_mut().zip(&region_coeffs[r]) {
                row[node] = i0 * coeff;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opera_pce::{GalerkinCoupling, OrthogonalBasis, PolynomialFamily};

    fn model() -> LeakageModel {
        LeakageModel::uniform_slices(10, 2, 1.0e-6, 0.03, 23.0).unwrap()
    }

    #[test]
    fn uniform_slices_partition_nodes_evenly() {
        let m = model();
        assert_eq!(m.region_count(), 2);
        assert_eq!(m.node_count(), 10);
        assert_eq!(m.region_of(0), 0);
        assert_eq!(m.region_of(9), 1);
        let counts: Vec<usize> = (0..2)
            .map(|r| (0..10).filter(|&n| m.region_of(n) == r).count())
            .collect();
        assert_eq!(counts, vec![5, 5]);
    }

    #[test]
    fn mean_leakage_reflects_lognormal_bias() {
        let m = model();
        let s: f64 = 23.0 * 0.03;
        let mean = m.mean_leakage();
        assert!(mean.iter().all(|&v| v > 1.0e-6));
        assert!((mean[0] - 1.0e-6 * (0.5 * s * s).exp()).abs() < 1e-18);
    }

    #[test]
    fn projected_injections_match_lognormal_statistics() {
        let m = model();
        let basis = OrthogonalBasis::total_order(PolynomialFamily::Hermite, 2, 3).unwrap();
        let coupling = GalerkinCoupling::new(&basis).unwrap();
        let inj = m.projected_injections(&basis, &coupling).unwrap();
        assert_eq!(inj.len(), basis.len());
        // The mean coefficient must equal the analytic lognormal mean.
        let s: f64 = 23.0 * 0.03;
        let mean_expected = 1.0e-6 * (0.5 * s * s).exp();
        assert!((inj[0][0] - mean_expected).abs() < 1e-3 * mean_expected);
        // A node in region 0 has zero coefficient on the pure-ξ₂ basis term.
        let xi2_index = basis.linear_index(1).unwrap();
        assert!(inj[xi2_index][0].abs() < 1e-20);
        // And a nonzero coefficient on the pure-ξ₁ term (negative: more
        // leakage for lower Vth).
        let xi1_index = basis.linear_index(0).unwrap();
        assert!(inj[xi1_index][0] < 0.0);
    }

    #[test]
    fn invalid_models_are_rejected() {
        assert!(LeakageModel::new(vec![0, 1], vec![1.0e-6], 0.03, 23.0).is_err());
        assert!(LeakageModel::new(vec![], vec![], 0.03, 23.0).is_err());
        assert!(LeakageModel::new(vec![0], vec![-1.0], 0.03, 23.0).is_err());
        assert!(LeakageModel::new(vec![0], vec![1.0], -0.1, 23.0).is_err());
        assert!(LeakageModel::uniform_slices(0, 2, 1.0e-6, 0.03, 23.0).is_err());
        assert!(LeakageModel::uniform_slices(5, 0, 1.0e-6, 0.03, 23.0).is_err());
    }

    #[test]
    fn basis_region_mismatch_is_reported() {
        let m = model();
        let basis = OrthogonalBasis::total_order(PolynomialFamily::Hermite, 3, 2).unwrap();
        let coupling = GalerkinCoupling::new(&basis).unwrap();
        assert!(m.projected_injections(&basis, &coupling).is_err());
    }
}
