//! Property-based tests of the polynomial chaos machinery.

use proptest::prelude::*;

use opera_pce::{
    basis_size, moments::moments, quadrature::gauss_rule, sampling, GalerkinCoupling,
    OrthogonalBasis, PceSeries, PolynomialFamily,
};

fn family_strategy() -> impl Strategy<Value = PolynomialFamily> {
    prop_oneof![
        Just(PolynomialFamily::Hermite),
        Just(PolynomialFamily::Legendre),
        Just(PolynomialFamily::Laguerre),
        (0.0f64..3.0).prop_map(|alpha| PolynomialFamily::GeneralizedLaguerre { alpha }),
        (0.0f64..2.0, 0.0f64..2.0).prop_map(|(a, b)| PolynomialFamily::Jacobi { a, b }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Gauss rules integrate the probability measure: weights sum to one and
    /// the degree-(2n−1) orthogonality of the family holds under quadrature.
    #[test]
    fn gauss_rules_are_normalised_and_orthogonal(family in family_strategy(), n in 3usize..9) {
        let rule = gauss_rule(family, n).unwrap();
        let total: f64 = rule.weights.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "weights sum to {total}");
        prop_assert!(rule.weights.iter().all(|&w| w > 0.0));
        // Orthogonality of φ_1 and φ_2 (degree 3 ≤ 2n − 1 for n ≥ 2).
        let inner = rule.integrate(|x| family.evaluate(1, x) * family.evaluate(2, x));
        prop_assert!(inner.abs() < 1e-7, "⟨φ1, φ2⟩ = {inner}");
        // Norm of φ_1 matches the closed form.
        let norm = rule.integrate(|x| family.evaluate(1, x).powi(2));
        prop_assert!((norm - family.norm_squared(1)).abs() < 1e-6 * family.norm_squared(1).max(1.0));
    }

    /// Across every order 1..=12: weights are a probability distribution
    /// (positive, summing to one) and, for the families whose measures are
    /// symmetric about zero (Hermite, Legendre), the nodes come in ±x pairs.
    #[test]
    fn gauss_rules_hold_across_orders_one_through_twelve(family in family_strategy()) {
        let symmetric = matches!(
            family,
            PolynomialFamily::Hermite | PolynomialFamily::Legendre
        );
        for n in 1usize..=12 {
            let rule = gauss_rule(family, n).unwrap();
            prop_assert_eq!(rule.len(), n);
            let total: f64 = rule.weights.iter().sum();
            prop_assert!(
                (total - 1.0).abs() < 1e-9,
                "{family}, n = {n}: weights sum to {total}"
            );
            prop_assert!(
                rule.weights.iter().all(|&w| w > 0.0),
                "{family}, n = {n}: non-positive weight"
            );
            if symmetric {
                // Nodes are sorted ascending, so node[i] must mirror
                // node[n−1−i]; odd rules pin the middle node at zero.
                for i in 0..n {
                    let mirrored = rule.nodes[n - 1 - i];
                    prop_assert!(
                        (rule.nodes[i] + mirrored).abs() < 1e-9,
                        "{family}, n = {n}: node {i} = {} not mirrored by {}",
                        rule.nodes[i],
                        mirrored
                    );
                }
                if n % 2 == 1 {
                    prop_assert!(rule.nodes[n / 2].abs() < 1e-9);
                }
            }
        }
    }

    /// The truncated basis has exactly C(n + p, p) functions and the first is
    /// the constant.
    #[test]
    fn basis_size_formula_holds(n_vars in 1usize..5, order in 0u32..5) {
        let basis = OrthogonalBasis::total_order(PolynomialFamily::Hermite, n_vars, order).unwrap();
        prop_assert_eq!(basis.len(), basis_size(n_vars, order).unwrap());
        prop_assert!(basis.multi_index(0).is_constant());
        // Graded: total degree is non-decreasing along the basis.
        for i in 1..basis.len() {
            prop_assert!(
                basis.multi_index(i - 1).total_degree() <= basis.multi_index(i).total_degree()
            );
        }
    }

    /// Mean and variance computed from the coefficients agree with a Monte
    /// Carlo estimate over the basis' own sampling routine.
    #[test]
    fn series_statistics_match_sampling(
        coeffs in proptest::collection::vec(-1.0f64..1.0, 6),
        seed in 0u64..1000,
    ) {
        let basis = OrthogonalBasis::total_order(PolynomialFamily::Hermite, 2, 2).unwrap();
        let series = PceSeries::from_coefficients(&basis, coeffs).unwrap();
        let samples = sampling::sample_standard(&basis, 20_000, seed);
        let values = sampling::evaluate_at_samples(&series, &samples).unwrap();
        let (mean, var) = sampling::sample_mean_variance(&values);
        prop_assert!((mean - series.mean()).abs() < 0.08 + 0.05 * series.std_dev());
        // Variance is noisier; allow a generous band.
        prop_assert!((var - series.variance()).abs() < 0.1 + 0.25 * series.variance());
    }

    /// The quadrature-based moments agree with the closed-form mean/variance
    /// for any coefficients and any (matching) basis.
    #[test]
    fn quadrature_moments_match_closed_forms(
        coeffs in proptest::collection::vec(-2.0f64..2.0, 10),
    ) {
        let basis = OrthogonalBasis::total_order(PolynomialFamily::Hermite, 3, 2).unwrap();
        let series = PceSeries::from_coefficients(&basis, coeffs).unwrap();
        let m = moments(&series).unwrap();
        prop_assert!((m.mean - series.mean()).abs() < 1e-10);
        prop_assert!((m.variance - series.variance()).abs() < 1e-8 * (1.0 + series.variance()));
    }

    /// Galerkin linear couplings are symmetric in (i, j) and vanish whenever
    /// the two basis functions differ in more than one degree of the coupled
    /// variable (selection rule of the Hermite recurrence).
    #[test]
    fn galerkin_coupling_symmetry_and_selection_rules(order in 1u32..4) {
        let basis = OrthogonalBasis::total_order(PolynomialFamily::Hermite, 2, order).unwrap();
        let coupling = GalerkinCoupling::new(&basis).unwrap();
        for d in 0..2 {
            for i in 0..basis.len() {
                for j in 0..basis.len() {
                    let v = coupling.linear(d, i, j);
                    prop_assert!((v - coupling.linear(d, j, i)).abs() < 1e-10);
                    let mi = basis.multi_index(i);
                    let mj = basis.multi_index(j);
                    // ⟨ξ_d ψ_i ψ_j⟩ ≠ 0 requires |α_d(i) − α_d(j)| = 1 and equal
                    // degrees in the other variable.
                    let delta_d = mi.degree(d).abs_diff(mj.degree(d));
                    let other = 1 - d;
                    if v.abs() > 1e-10 {
                        prop_assert_eq!(delta_d, 1, "coupling {} between {} and {}", v, mi, mj);
                        prop_assert_eq!(mi.degree(other), mj.degree(other));
                    }
                }
            }
        }
    }

    /// Evaluating the basis and summing with coefficients equals the series
    /// evaluation (consistency of the two code paths).
    #[test]
    fn series_evaluation_is_consistent(
        xi in proptest::collection::vec(-2.0f64..2.0, 2),
        coeffs in proptest::collection::vec(-1.0f64..1.0, 6),
    ) {
        let basis = OrthogonalBasis::total_order(PolynomialFamily::Hermite, 2, 2).unwrap();
        let series = PceSeries::from_coefficients(&basis, coeffs.clone()).unwrap();
        let psi = basis.evaluate_all(&xi).unwrap();
        let direct: f64 = coeffs.iter().zip(&psi).map(|(c, p)| c * p).sum();
        prop_assert!((series.evaluate(&xi).unwrap() - direct).abs() < 1e-10);
    }
}
