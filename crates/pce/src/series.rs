//! Scalar polynomial chaos expansions.

use crate::{OrthogonalBasis, PceError, Result};

/// A scalar random variable represented by a truncated orthogonal polynomial
/// expansion `x(ξ) = Σ_i a_i ψ_i(ξ)`.
///
/// This is the "explicit analytical representation of the stochastic voltage
/// response" of the paper: once the coefficients are known, moments and
/// samples are available in closed form without further circuit solves.
///
/// # Example
///
/// ```
/// use opera_pce::{OrthogonalBasis, PolynomialFamily, PceSeries};
///
/// # fn main() -> Result<(), opera_pce::PceError> {
/// let basis = OrthogonalBasis::total_order(PolynomialFamily::Hermite, 1, 2)?;
/// // x = 2 + 0.3 ξ + 0.05 (ξ² − 1)
/// let x = PceSeries::from_coefficients(&basis, vec![2.0, 0.3, 0.05])?;
/// assert!((x.mean() - 2.0).abs() < 1e-15);
/// assert!((x.variance() - (0.09 + 0.005)).abs() < 1e-15);
/// assert!((x.evaluate(&[1.0])? - 2.3).abs() < 1e-15);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PceSeries {
    basis: OrthogonalBasis,
    coefficients: Vec<f64>,
}

impl PceSeries {
    /// Creates a series from coefficients in basis order.
    ///
    /// # Errors
    ///
    /// Returns [`PceError::CoefficientLengthMismatch`] if the coefficient
    /// count does not equal the basis size.
    pub fn from_coefficients(basis: &OrthogonalBasis, coefficients: Vec<f64>) -> Result<Self> {
        if coefficients.len() != basis.len() {
            return Err(PceError::CoefficientLengthMismatch {
                got: coefficients.len(),
                expected: basis.len(),
            });
        }
        Ok(PceSeries {
            basis: basis.clone(),
            coefficients,
        })
    }

    /// A deterministic (constant) series.
    pub fn constant(basis: &OrthogonalBasis, value: f64) -> Self {
        let mut coefficients = vec![0.0; basis.len()];
        coefficients[0] = value;
        PceSeries {
            basis: basis.clone(),
            coefficients,
        }
    }

    /// The basis this series is expressed in.
    pub fn basis(&self) -> &OrthogonalBasis {
        &self.basis
    }

    /// The expansion coefficients in basis order.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Mean `E[x] = a₀` (the basis is in the unnormalised convention where
    /// `ψ₀ ≡ 1` and all other basis functions have zero mean).
    pub fn mean(&self) -> f64 {
        self.coefficients[0]
    }

    /// Variance `Var[x] = Σ_{i>0} a_i² ⟨ψ_i²⟩` (paper Eq. 23).
    pub fn variance(&self) -> f64 {
        self.coefficients
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, a)| a * a * self.basis.norm_squared(i))
            .sum()
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Evaluates the expansion at a sample of the random variables.
    ///
    /// # Errors
    ///
    /// Returns [`PceError::DimensionMismatch`] if `xi` has the wrong length.
    pub fn evaluate(&self, xi: &[f64]) -> Result<f64> {
        let psi = self.basis.evaluate_all(xi)?;
        Ok(self.coefficients.iter().zip(&psi).map(|(a, p)| a * p).sum())
    }

    /// Adds another series over the same basis.
    ///
    /// # Errors
    ///
    /// Returns [`PceError::BasisMismatch`] if the bases differ.
    pub fn add(&self, other: &PceSeries) -> Result<PceSeries> {
        if self.basis != other.basis {
            return Err(PceError::BasisMismatch);
        }
        let coefficients = self
            .coefficients
            .iter()
            .zip(&other.coefficients)
            .map(|(a, b)| a + b)
            .collect();
        Ok(PceSeries {
            basis: self.basis.clone(),
            coefficients,
        })
    }

    /// Returns the series scaled by `alpha`.
    pub fn scaled(&self, alpha: f64) -> PceSeries {
        PceSeries {
            basis: self.basis.clone(),
            coefficients: self.coefficients.iter().map(|a| alpha * a).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PolynomialFamily;

    fn basis() -> OrthogonalBasis {
        OrthogonalBasis::total_order(PolynomialFamily::Hermite, 2, 2).unwrap()
    }

    #[test]
    fn mean_and_variance_follow_paper_formula() {
        let b = basis();
        // Paper Eq. (23): Var = a1² + a2² + 2 a3² + a4² + 2 a5².
        let a = vec![1.5, 0.2, -0.1, 0.05, 0.3, -0.02];
        let s = PceSeries::from_coefficients(&b, a.clone()).unwrap();
        assert_eq!(s.mean(), 1.5);
        let expected =
            a[1] * a[1] + a[2] * a[2] + 2.0 * a[3] * a[3] + a[4] * a[4] + 2.0 * a[5] * a[5];
        assert!((s.variance() - expected).abs() < 1e-15);
        assert!((s.std_dev() - expected.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn evaluation_matches_direct_polynomial() {
        let b = basis();
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let s = PceSeries::from_coefficients(&b, a.clone()).unwrap();
        let xi = [0.4, -1.2];
        let direct = a[0]
            + a[1] * xi[0]
            + a[2] * xi[1]
            + a[3] * (xi[0] * xi[0] - 1.0)
            + a[4] * xi[0] * xi[1]
            + a[5] * (xi[1] * xi[1] - 1.0);
        assert!((s.evaluate(&xi).unwrap() - direct).abs() < 1e-13);
    }

    #[test]
    fn constant_series_has_zero_variance() {
        let s = PceSeries::constant(&basis(), 7.5);
        assert_eq!(s.mean(), 7.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.evaluate(&[0.3, -0.4]).unwrap(), 7.5);
    }

    #[test]
    fn add_and_scale_are_linear() {
        let b = basis();
        let s1 = PceSeries::from_coefficients(&b, vec![1.0, 1.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
        let s2 = PceSeries::from_coefficients(&b, vec![2.0, 0.0, 3.0, 0.0, 0.0, 0.0]).unwrap();
        let sum = s1.add(&s2).unwrap().scaled(2.0);
        assert_eq!(sum.coefficients(), &[6.0, 2.0, 6.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn wrong_lengths_and_bases_are_rejected() {
        let b = basis();
        assert!(matches!(
            PceSeries::from_coefficients(&b, vec![1.0, 2.0]),
            Err(PceError::CoefficientLengthMismatch { .. })
        ));
        let other = OrthogonalBasis::total_order(PolynomialFamily::Hermite, 2, 1).unwrap();
        let s1 = PceSeries::constant(&b, 1.0);
        let s2 = PceSeries::constant(&other, 1.0);
        assert!(matches!(s1.add(&s2), Err(PceError::BasisMismatch)));
    }
}
