//! Galerkin coupling tensors.
//!
//! The spectral (Galerkin) projection of the stochastic MNA equation
//! `(G(ξ) + sC(ξ)) x(s,ξ) = U(s,ξ)` onto a basis `{ψ_i}` requires the inner
//! products
//!
//! * `⟨ψ_i ψ_j⟩ = δ_ij ⟨ψ_i²⟩` (mass terms, the mean matrices `G_a`, `C_a`),
//! * `⟨ξ_d ψ_i ψ_j⟩` (linear parameter coupling, the perturbation matrices
//!   `G_g`, `C_c`, …),
//! * `⟨ψ_k ψ_i ψ_j⟩` (general coupling for parameters expanded in the basis).
//!
//! [`GalerkinCoupling`] precomputes these with Gauss quadrature that is exact
//! for the polynomial degrees involved, and reproduces the explicit 6×6 block
//! pattern of Eqs. (20)–(22) of the paper for the 2-variable order-2 Hermite
//! case (see the unit tests).

use crate::quadrature::{tensor_rule, TensorRule};
use crate::{OrthogonalBasis, Result};

/// Precomputed Galerkin inner products for a given basis.
#[derive(Debug, Clone)]
pub struct GalerkinCoupling {
    size: usize,
    n_vars: usize,
    /// `norms[i] = ⟨ψ_i²⟩`.
    norms: Vec<f64>,
    /// `linear[d][i * size + j] = ⟨ξ_d ψ_i ψ_j⟩`.
    linear: Vec<Vec<f64>>,
    /// Quadrature rule kept for on-demand triple products.
    rule: TensorRule,
    /// Cached basis evaluations at the quadrature nodes:
    /// `psi_at_nodes[q][i] = ψ_i(x_q)`.
    psi_at_nodes: Vec<Vec<f64>>,
}

impl GalerkinCoupling {
    /// Precomputes the coupling tensors for `basis`.
    ///
    /// # Errors
    ///
    /// Propagates quadrature construction errors.
    pub fn new(basis: &OrthogonalBasis) -> Result<Self> {
        // ψ_i ψ_j ξ_d has per-variable degree at most 2p + 1; an
        // (p + 2)-point Gauss rule is exact up to degree 2p + 3.
        let points = basis.order() as usize + 2;
        let rule = tensor_rule(basis.families(), points)?;
        let size = basis.len();
        let n_vars = basis.n_vars();
        let psi_at_nodes: Vec<Vec<f64>> = rule
            .nodes
            .iter()
            .map(|x| basis.evaluate_all(x))
            .collect::<Result<_>>()?;
        let norms: Vec<f64> = (0..size).map(|i| basis.norm_squared(i)).collect();

        let mut linear = vec![vec![0.0; size * size]; n_vars];
        for (q, x) in rule.nodes.iter().enumerate() {
            let w = rule.weights[q];
            let psi = &psi_at_nodes[q];
            for (d, lin_d) in linear.iter_mut().enumerate() {
                let wx = w * x[d];
                if wx == 0.0 {
                    continue;
                }
                for i in 0..size {
                    let wxi = wx * psi[i];
                    for j in 0..size {
                        lin_d[i * size + j] += wxi * psi[j];
                    }
                }
            }
        }
        // Clean tiny quadrature noise so structural zeros stay exactly zero.
        for lin_d in &mut linear {
            for v in lin_d.iter_mut() {
                if v.abs() < 1e-12 {
                    *v = 0.0;
                }
            }
        }
        Ok(GalerkinCoupling {
            size,
            n_vars,
            norms,
            linear,
            rule,
            psi_at_nodes,
        })
    }

    /// Number of basis functions `N + 1`.
    pub fn len(&self) -> usize {
        self.size
    }

    /// Returns `true` if the coupling is empty (never for a valid basis).
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Number of random variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// `⟨ψ_i²⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn norm_squared(&self, i: usize) -> f64 {
        self.norms[i]
    }

    /// `⟨ξ_d ψ_i ψ_j⟩`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn linear(&self, d: usize, i: usize, j: usize) -> f64 {
        self.linear[d][i * self.size + j]
    }

    /// The dense `(N+1)×(N+1)` matrix of `⟨ξ_d ψ_i ψ_j⟩` in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn linear_matrix(&self, d: usize) -> &[f64] {
        &self.linear[d]
    }

    /// General triple product `⟨ψ_k ψ_i ψ_j⟩` computed with the cached
    /// quadrature rule (exact as long as the three total degrees sum to at
    /// most `2·points − 1`, which holds for factors from the same basis).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn triple(&self, k: usize, i: usize, j: usize) -> f64 {
        let mut acc = 0.0;
        for (q, w) in self.rule.weights.iter().enumerate() {
            let psi = &self.psi_at_nodes[q];
            acc += w * psi[k] * psi[i] * psi[j];
        }
        if acc.abs() < 1e-12 {
            0.0
        } else {
            acc
        }
    }

    /// Projection coefficients `⟨f(ξ) ψ_i⟩ / ⟨ψ_i²⟩` of an arbitrary function
    /// of the random variables — used to expand non-polynomial inputs such as
    /// lognormal leakage currents on the basis.
    pub fn project(&self, mut f: impl FnMut(&[f64]) -> f64) -> Vec<f64> {
        let mut coeffs = vec![0.0; self.size];
        for (q, w) in self.rule.weights.iter().enumerate() {
            let value = f(&self.rule.nodes[q]);
            let psi = &self.psi_at_nodes[q];
            for (i, c) in coeffs.iter_mut().enumerate() {
                *c += w * value * psi[i];
            }
        }
        for (i, c) in coeffs.iter_mut().enumerate() {
            *c /= self.norms[i];
        }
        coeffs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PolynomialFamily;

    fn paper_basis() -> OrthogonalBasis {
        OrthogonalBasis::total_order(PolynomialFamily::Hermite, 2, 2).unwrap()
    }

    #[test]
    fn mass_terms_match_hermite_norms() {
        let basis = paper_basis();
        let c = GalerkinCoupling::new(&basis).unwrap();
        let expected = [1.0, 1.0, 1.0, 2.0, 1.0, 2.0];
        for (i, &e) in expected.iter().enumerate() {
            assert!((c.norm_squared(i) - e).abs() < 1e-12);
        }
    }

    /// The linear coupling in ξ₁ (= ξ_G) must reproduce the `Gg` pattern of
    /// the paper's Eq. (20):
    ///
    /// ```text
    ///        j=0   1    2    3    4    5
    /// i=0  [  0    1    0    0    0    0 ]
    /// i=1  [  1    0    0    2    0    0 ]
    /// i=2  [  0    0    0    0    1    0 ]
    /// i=3  [  0    2    0    0    0    0 ]
    /// i=4  [  0    0    1    0    0    0 ]
    /// i=5  [  0    0    0    0    0    0 ]
    /// ```
    #[test]
    fn linear_coupling_matches_paper_equation_20() {
        let basis = paper_basis();
        let c = GalerkinCoupling::new(&basis).unwrap();
        #[rustfmt::skip]
        let expected: [[f64; 6]; 6] = [
            [0.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0, 2.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, 0.0, 1.0, 0.0],
            [0.0, 2.0, 0.0, 0.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        ];
        #[allow(clippy::needless_range_loop)] // (i, j) index the expected coupling matrix
        for i in 0..6 {
            for j in 0..6 {
                assert!(
                    (c.linear(0, i, j) - expected[i][j]).abs() < 1e-10,
                    "⟨ξG ψ{i} ψ{j}⟩ = {}, expected {}",
                    c.linear(0, i, j),
                    expected[i][j]
                );
            }
        }
    }

    /// The ξ₂ (= ξ_L) coupling must reproduce the `Cc` pattern of Eq. (21).
    #[test]
    fn linear_coupling_matches_paper_equation_21() {
        let basis = paper_basis();
        let c = GalerkinCoupling::new(&basis).unwrap();
        #[rustfmt::skip]
        let expected: [[f64; 6]; 6] = [
            [0.0, 0.0, 1.0, 0.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, 0.0, 1.0, 0.0],
            [1.0, 0.0, 0.0, 0.0, 0.0, 2.0],
            [0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            [0.0, 0.0, 2.0, 0.0, 0.0, 0.0],
        ];
        #[allow(clippy::needless_range_loop)] // (i, j) index the expected coupling matrix
        for i in 0..6 {
            for j in 0..6 {
                assert!(
                    (c.linear(1, i, j) - expected[i][j]).abs() < 1e-10,
                    "⟨ξL ψ{i} ψ{j}⟩ mismatch at ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn coupling_matrices_are_symmetric() {
        let basis = OrthogonalBasis::total_order(PolynomialFamily::Hermite, 3, 3).unwrap();
        let c = GalerkinCoupling::new(&basis).unwrap();
        for d in 0..3 {
            for i in 0..basis.len() {
                for j in 0..basis.len() {
                    assert!((c.linear(d, i, j) - c.linear(d, j, i)).abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn triple_products_match_known_hermite_values() {
        let basis = paper_basis();
        let c = GalerkinCoupling::new(&basis).unwrap();
        // ⟨ψ0 ψi ψj⟩ = δ_ij ⟨ψi²⟩.
        for i in 0..6 {
            for j in 0..6 {
                let expected = if i == j { basis.norm_squared(i) } else { 0.0 };
                assert!((c.triple(0, i, j) - expected).abs() < 1e-10);
            }
        }
        // ⟨ψ3 ψ3 ψ3⟩ = ⟨(ξ²−1)³⟩ = E[ξ⁶ − 3ξ⁴ + 3ξ² − 1] = 15 − 9 + 3 − 1 = 8.
        assert!((c.triple(3, 3, 3) - 8.0).abs() < 1e-9);
        // ⟨ψ1 ψ1 ψ3⟩ = ⟨ξ²(ξ²−1)⟩ = 2.
        assert!((c.triple(1, 1, 3) - 2.0).abs() < 1e-10);
    }

    #[test]
    fn projection_recovers_polynomial_coefficients() {
        let basis = paper_basis();
        let c = GalerkinCoupling::new(&basis).unwrap();
        // f(ξ) = 3 + 2ξ₁ − ξ₂ + 0.5(ξ₁² − 1) has exact coefficients.
        let coeffs = c.project(|x| 3.0 + 2.0 * x[0] - x[1] + 0.5 * (x[0] * x[0] - 1.0));
        let expected = [3.0, 2.0, -1.0, 0.5, 0.0, 0.0];
        for (got, want) in coeffs.iter().zip(&expected) {
            assert!((got - want).abs() < 1e-10, "{coeffs:?}");
        }
    }

    #[test]
    fn projection_of_lognormal_matches_analytic_mean() {
        // exp(σ ξ) has mean exp(σ²/2); the order-0 projection coefficient is
        // exactly that mean. Quadrature with p + 2 = 4 points is not exact for
        // the exponential, so allow a loose tolerance.
        let basis = paper_basis();
        let c = GalerkinCoupling::new(&basis).unwrap();
        let sigma = 0.3;
        let coeffs = c.project(|x| (sigma * x[0]).exp());
        let expected_mean = (sigma * sigma / 2.0f64).exp();
        assert!((coeffs[0] - expected_mean).abs() < 1e-4);
    }
}
