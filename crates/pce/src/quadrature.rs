//! Gauss quadrature rules for the Askey-scheme probability weights.
//!
//! Nodes are computed as the eigenvalues of the Jacobi (tridiagonal
//! recurrence) matrix — the Golub–Welsch construction — using a robust Sturm
//! sequence bisection rather than a QL iteration. Weights follow from the
//! Christoffel numbers `w_i = 1 / Σ_k φ̂_k(x_i)²` where `φ̂_k` are the
//! orthonormal polynomials. All rules integrate against *probability*
//! measures, so the weights of every rule sum to one.

use crate::{PceError, PolynomialFamily, Result};

/// A one-dimensional Gauss quadrature rule: `∫ f(x) w(x) dx ≈ Σ_i w_i f(x_i)`
/// where `w(x)` is the probability density of the family's standard variable.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussRule {
    /// Quadrature nodes (roots of the degree-`n` orthogonal polynomial).
    pub nodes: Vec<f64>,
    /// Quadrature weights (positive, summing to one).
    pub weights: Vec<f64>,
}

impl GaussRule {
    /// Integrates a function against the rule.
    pub fn integrate(&self, mut f: impl FnMut(f64) -> f64) -> f64 {
        self.nodes
            .iter()
            .zip(&self.weights)
            .map(|(&x, &w)| w * f(x))
            .sum()
    }

    /// Number of quadrature points.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the rule has no points (never produced by
    /// [`gauss_rule`]).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Builds the `n`-point Gauss rule for the given polynomial family. The rule
/// integrates polynomials up to degree `2n − 1` exactly.
///
/// # Errors
///
/// Returns [`PceError::InvalidParameter`] if `n == 0` or the family
/// parameters are invalid.
///
/// # Example
///
/// ```
/// use opera_pce::{quadrature::gauss_rule, PolynomialFamily};
///
/// # fn main() -> Result<(), opera_pce::PceError> {
/// let rule = gauss_rule(PolynomialFamily::Hermite, 5)?;
/// // E[ξ²] = 1 for a standard Gaussian.
/// let second_moment = rule.integrate(|x| x * x);
/// assert!((second_moment - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn gauss_rule(family: PolynomialFamily, n: usize) -> Result<GaussRule> {
    family.validate()?;
    if n == 0 {
        return Err(PceError::InvalidParameter {
            name: "quadrature points",
            value: "0".to_string(),
        });
    }
    // Jacobi matrix of the monic recurrence: diagonal a_k, off-diagonal
    // sqrt(b_k) (k = 1..n−1).
    let mut diag = Vec::with_capacity(n);
    let mut offdiag = Vec::with_capacity(n.saturating_sub(1));
    for k in 0..n {
        let (a_k, b_k) = family.monic_recurrence(k as u32);
        diag.push(a_k);
        if k > 0 {
            offdiag.push(b_k.sqrt());
        }
    }
    let nodes = symmetric_tridiagonal_eigenvalues(&diag, &offdiag);

    // Christoffel weights via orthonormal polynomial evaluation.
    let weights: Vec<f64> = nodes
        .iter()
        .map(|&x| {
            let mut sum = 0.0;
            let values = family.evaluate_all(n as u32 - 1, x);
            for (k, v) in values.iter().enumerate() {
                sum += v * v / family.norm_squared(k as u32);
            }
            1.0 / sum
        })
        .collect();
    Ok(GaussRule { nodes, weights })
}

/// A tensor-product quadrature rule over several (possibly different)
/// univariate families.
#[derive(Debug, Clone)]
pub struct TensorRule {
    /// Multi-dimensional nodes, one `Vec<f64>` of length `n_vars` per point.
    pub nodes: Vec<Vec<f64>>,
    /// Weights (product of the univariate weights), summing to one.
    pub weights: Vec<f64>,
}

impl TensorRule {
    /// Integrates a multivariate function against the rule.
    pub fn integrate(&self, mut f: impl FnMut(&[f64]) -> f64) -> f64 {
        self.nodes
            .iter()
            .zip(&self.weights)
            .map(|(x, &w)| w * f(x))
            .sum()
    }

    /// Number of tensor nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Builds the full tensor product of `points`-point Gauss rules, one per
/// family in `families`.
///
/// # Errors
///
/// Propagates errors from [`gauss_rule`]; also rejects an empty family list.
pub fn tensor_rule(families: &[PolynomialFamily], points: usize) -> Result<TensorRule> {
    if families.is_empty() {
        return Err(PceError::InvalidBasis {
            reason: "tensor rule needs at least one variable".to_string(),
        });
    }
    let rules: Vec<GaussRule> = families
        .iter()
        .map(|&f| gauss_rule(f, points))
        .collect::<Result<_>>()?;
    let total: usize = rules.iter().map(|r| r.len()).product();
    let mut nodes = Vec::with_capacity(total);
    let mut weights = Vec::with_capacity(total);
    let mut counter = vec![0usize; families.len()];
    loop {
        let mut point = Vec::with_capacity(families.len());
        let mut w = 1.0;
        for (d, &c) in counter.iter().enumerate() {
            point.push(rules[d].nodes[c]);
            w *= rules[d].weights[c];
        }
        nodes.push(point);
        weights.push(w);
        // Increment the mixed-radix counter.
        let mut d = 0;
        loop {
            if d == families.len() {
                return Ok(TensorRule { nodes, weights });
            }
            counter[d] += 1;
            if counter[d] < rules[d].len() {
                break;
            }
            counter[d] = 0;
            d += 1;
        }
    }
}

/// Eigenvalues of a symmetric tridiagonal matrix via Sturm-sequence bisection.
///
/// `diag` has length `n`, `offdiag` length `n − 1`. The eigenvalues are
/// returned in ascending order. This is O(n² log(1/ε)) which is perfectly
/// adequate for quadrature rules with at most a few hundred points.
pub fn symmetric_tridiagonal_eigenvalues(diag: &[f64], offdiag: &[f64]) -> Vec<f64> {
    let n = diag.len();
    assert!(
        offdiag.len() + 1 == n || (n == 0 && offdiag.is_empty()),
        "offdiag must have length n - 1"
    );
    if n == 0 {
        return Vec::new();
    }
    // Gershgorin bounds.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..n {
        let left = if i > 0 { offdiag[i - 1].abs() } else { 0.0 };
        let right = if i + 1 < n { offdiag[i].abs() } else { 0.0 };
        lo = lo.min(diag[i] - left - right);
        hi = hi.max(diag[i] + left + right);
    }
    let span = (hi - lo).max(1e-300);
    let lo = lo - 1e-12 * span - 1e-300;
    let hi = hi + 1e-12 * span + 1e-300;

    // Sturm count: number of eigenvalues strictly less than x.
    let count_below = |x: f64| -> usize {
        let mut count = 0usize;
        let mut d = diag[0] - x;
        if d < 0.0 {
            count += 1;
        }
        for i in 1..n {
            let e2 = offdiag[i - 1] * offdiag[i - 1];
            let denom = if d.abs() < 1e-300 {
                1e-300_f64.copysign(if d == 0.0 { 1.0 } else { d })
            } else {
                d
            };
            d = diag[i] - x - e2 / denom;
            if d < 0.0 {
                count += 1;
            }
        }
        count
    };

    let tol = 1e-15 * span.max(1.0);
    let mut eigenvalues = Vec::with_capacity(n);
    for k in 0..n {
        // Find the k-th smallest eigenvalue by bisection on the count.
        let mut a = lo;
        let mut b = hi;
        while b - a > tol {
            let mid = 0.5 * (a + b);
            if count_below(mid) > k {
                b = mid;
            } else {
                a = mid;
            }
        }
        eigenvalues.push(0.5 * (a + b));
    }
    eigenvalues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::factorial;

    #[test]
    fn tridiagonal_eigenvalues_of_known_matrix() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let eig = symmetric_tridiagonal_eigenvalues(&[2.0, 2.0], &[1.0]);
        assert!((eig[0] - 1.0).abs() < 1e-10);
        assert!((eig[1] - 3.0).abs() < 1e-10);
        // Diagonal matrix.
        let eig = symmetric_tridiagonal_eigenvalues(&[3.0, -1.0, 5.0], &[0.0, 0.0]);
        assert!((eig[0] + 1.0).abs() < 1e-10);
        assert!((eig[2] - 5.0).abs() < 1e-10);
    }

    #[test]
    fn gauss_hermite_integrates_gaussian_moments_exactly() {
        let rule = gauss_rule(PolynomialFamily::Hermite, 8).unwrap();
        assert!((rule.weights.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // E[ξ^{2m}] = (2m − 1)!! for a standard Gaussian.
        let double_factorial = |m: u32| (1..=m).map(|i| (2 * i - 1) as f64).product::<f64>();
        for m in 1..=7u32 {
            let moment = rule.integrate(|x| x.powi(2 * m as i32));
            assert!(
                (moment - double_factorial(m)).abs() < 1e-9 * double_factorial(m).max(1.0),
                "moment 2m = {} mismatch: {moment}",
                2 * m
            );
        }
        // Odd moments vanish.
        assert!(rule.integrate(|x| x.powi(3)).abs() < 1e-10);
    }

    #[test]
    fn gauss_hermite_reproduces_hermite_norms() {
        let fam = PolynomialFamily::Hermite;
        let rule = gauss_rule(fam, 10).unwrap();
        for k in 0..=6u32 {
            let norm = rule.integrate(|x| {
                let v = fam.evaluate(k, x);
                v * v
            });
            assert!(
                (norm - factorial(k)).abs() < 1e-8 * factorial(k),
                "k = {k}: {norm} vs {}",
                factorial(k)
            );
        }
        // Orthogonality of distinct degrees.
        let cross = rule.integrate(|x| fam.evaluate(2, x) * fam.evaluate(4, x));
        assert!(cross.abs() < 1e-9);
    }

    #[test]
    fn gauss_legendre_integrates_uniform_moments() {
        let rule = gauss_rule(PolynomialFamily::Legendre, 6).unwrap();
        // E[x²] over U(−1, 1) = 1/3; E[x⁴] = 1/5.
        assert!((rule.integrate(|x| x * x) - 1.0 / 3.0).abs() < 1e-12);
        assert!((rule.integrate(|x| x.powi(4)) - 0.2).abs() < 1e-12);
        assert!((rule.weights.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gauss_laguerre_integrates_exponential_moments() {
        let rule = gauss_rule(PolynomialFamily::Laguerre, 10).unwrap();
        // E[x^m] = m! for Exp(1).
        for m in 1..=5u32 {
            let moment = rule.integrate(|x| x.powi(m as i32));
            assert!(
                (moment - factorial(m)).abs() < 1e-7 * factorial(m),
                "m = {m}: {moment}"
            );
        }
    }

    #[test]
    fn gauss_jacobi_handles_beta_weights() {
        let rule = gauss_rule(PolynomialFamily::Jacobi { a: 1.0, b: 2.0 }, 8).unwrap();
        assert!((rule.weights.iter().sum::<f64>() - 1.0).abs() < 1e-10);
        // Mean of the shifted Beta: for weight (1−x)^a (1+x)^b on [−1,1],
        // E[x] = (b − a) / (a + b + 2) = 1/5.
        assert!((rule.integrate(|x| x) - 0.2).abs() < 1e-10);
    }

    #[test]
    fn tensor_rule_integrates_separable_functions() {
        let rule = tensor_rule(&[PolynomialFamily::Hermite, PolynomialFamily::Hermite], 5).unwrap();
        assert_eq!(rule.len(), 25);
        // E[ξ₁² ξ₂²] = 1 for independent standard Gaussians.
        assert!((rule.integrate(|x| x[0] * x[0] * x[1] * x[1]) - 1.0).abs() < 1e-10);
        // E[ξ₁ ξ₂] = 0.
        assert!(rule.integrate(|x| x[0] * x[1]).abs() < 1e-12);
    }

    #[test]
    fn zero_points_is_rejected() {
        assert!(gauss_rule(PolynomialFamily::Hermite, 0).is_err());
        assert!(tensor_rule(&[], 3).is_err());
    }

    #[test]
    fn weights_are_positive() {
        for fam in [
            PolynomialFamily::Hermite,
            PolynomialFamily::Legendre,
            PolynomialFamily::Laguerre,
            PolynomialFamily::GeneralizedLaguerre { alpha: 1.5 },
            PolynomialFamily::Jacobi { a: 0.5, b: 0.5 },
        ] {
            let rule = gauss_rule(fam, 7).unwrap();
            assert!(rule.weights.iter().all(|&w| w > 0.0), "family {fam}");
            assert_eq!(rule.len(), 7);
        }
    }
}
