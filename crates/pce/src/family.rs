//! Univariate orthogonal polynomial families of the Askey scheme.
//!
//! Each family is orthogonal with respect to the probability density of a
//! standard random variable (the paper's normalised, zero-mean/unit-variance
//! or canonical-form variables):
//!
//! | Family            | Random variable            | Support    | Weight (pdf)                  |
//! |-------------------|----------------------------|------------|-------------------------------|
//! | Hermite (prob.)   | standard Gaussian          | ℝ          | `exp(−x²/2)/√(2π)`            |
//! | Legendre          | uniform on [−1, 1]         | [−1, 1]    | `1/2`                         |
//! | Laguerre          | exponential (Gamma k=1)    | [0, ∞)     | `exp(−x)`                     |
//! | Generalised Laguerre `α` | Gamma(shape α+1)    | [0, ∞)     | `x^α exp(−x)/Γ(α+1)`          |
//! | Jacobi `(a, b)`   | shifted Beta on [−1, 1]    | [−1, 1]    | `∝ (1−x)^a (1+x)^b`           |
//!
//! The polynomials are kept *unnormalised* in the classical convention used
//! by the paper (`He₂(ξ) = ξ² − 1` with `⟨He₂²⟩ = 2`); [`PolynomialFamily::norm_squared`]
//! provides the squared norms needed for Galerkin projections.

use crate::{PceError, Result};

/// A univariate orthogonal polynomial family from the Askey scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolynomialFamily {
    /// Probabilists' Hermite polynomials `He_k` — Gaussian variables.
    Hermite,
    /// Legendre polynomials `P_k` — uniform variables on `[-1, 1]`.
    Legendre,
    /// Laguerre polynomials `L_k` — exponential variables.
    Laguerre,
    /// Generalised Laguerre polynomials `L_k^{(α)}` — Gamma variables with
    /// shape `α + 1` (must have `α > −1`).
    GeneralizedLaguerre {
        /// Exponent `α` of the Gamma weight `x^α e^{-x}`.
        alpha: f64,
    },
    /// Jacobi polynomials `P_k^{(a, b)}` — Beta variables mapped to `[-1, 1]`
    /// (must have `a, b > −1`).
    Jacobi {
        /// Exponent of `(1 − x)`.
        a: f64,
        /// Exponent of `(1 + x)`.
        b: f64,
    },
}

impl PolynomialFamily {
    /// Validates the family parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PceError::InvalidParameter`] when a Jacobi or generalised
    /// Laguerre exponent is ≤ −1 or not finite.
    pub fn validate(&self) -> Result<()> {
        match *self {
            PolynomialFamily::GeneralizedLaguerre { alpha }
                if (alpha <= -1.0 || !alpha.is_finite()) =>
            {
                return Err(PceError::InvalidParameter {
                    name: "alpha",
                    value: alpha.to_string(),
                });
            }
            PolynomialFamily::Jacobi { a, b }
                if (a <= -1.0 || b <= -1.0 || !a.is_finite() || !b.is_finite()) =>
            {
                return Err(PceError::InvalidParameter {
                    name: "jacobi exponents",
                    value: format!("a = {a}, b = {b}"),
                });
            }
            _ => {}
        }
        Ok(())
    }

    /// Evaluates the degree-`k` polynomial of this family at `x`.
    pub fn evaluate(&self, k: u32, x: f64) -> f64 {
        *self
            .evaluate_all(k, x)
            .last()
            // lint: allow(L001, evaluate_all returns exactly k + 1 values, so last() is structurally Some)
            .expect("evaluate_all returns k + 1 values")
    }

    /// Evaluates all polynomials of degree `0..=max_degree` at `x`.
    pub fn evaluate_all(&self, max_degree: u32, x: f64) -> Vec<f64> {
        let n = max_degree as usize;
        let mut values = Vec::with_capacity(n + 1);
        values.push(1.0);
        if n == 0 {
            return values;
        }
        match *self {
            PolynomialFamily::Hermite => {
                values.push(x);
                for k in 1..n {
                    let kf = k as f64;
                    let next = x * values[k] - kf * values[k - 1];
                    values.push(next);
                }
            }
            PolynomialFamily::Legendre => {
                values.push(x);
                for k in 1..n {
                    let kf = k as f64;
                    let next = ((2.0 * kf + 1.0) * x * values[k] - kf * values[k - 1]) / (kf + 1.0);
                    values.push(next);
                }
            }
            PolynomialFamily::Laguerre => {
                values.push(1.0 - x);
                for k in 1..n {
                    let kf = k as f64;
                    let next = ((2.0 * kf + 1.0 - x) * values[k] - kf * values[k - 1]) / (kf + 1.0);
                    values.push(next);
                }
            }
            PolynomialFamily::GeneralizedLaguerre { alpha } => {
                values.push(1.0 + alpha - x);
                for k in 1..n {
                    let kf = k as f64;
                    let next = ((2.0 * kf + 1.0 + alpha - x) * values[k]
                        - (kf + alpha) * values[k - 1])
                        / (kf + 1.0);
                    values.push(next);
                }
            }
            PolynomialFamily::Jacobi { a, b } => {
                values.push(0.5 * (a - b + (a + b + 2.0) * x));
                for k in 1..n {
                    let kf = k as f64;
                    // Standard three-term recurrence for Jacobi polynomials.
                    let c1 = 2.0 * (kf + 1.0) * (kf + a + b + 1.0) * (2.0 * kf + a + b);
                    let c2 = (2.0 * kf + a + b + 1.0) * (a * a - b * b);
                    let c3 =
                        (2.0 * kf + a + b) * (2.0 * kf + a + b + 1.0) * (2.0 * kf + a + b + 2.0);
                    let c4 = 2.0 * (kf + a) * (kf + b) * (2.0 * kf + a + b + 2.0);
                    let next = ((c2 + c3 * x) * values[k] - c4 * values[k - 1]) / c1;
                    values.push(next);
                }
            }
        }
        values
    }

    /// Squared norm `⟨φ_k, φ_k⟩` of the degree-`k` polynomial with respect to
    /// the family's probability weight.
    pub fn norm_squared(&self, k: u32) -> f64 {
        let kf = k as f64;
        match *self {
            // ⟨He_k²⟩ = k!
            PolynomialFamily::Hermite => factorial(k),
            // ⟨P_k²⟩ with weight 1/2 on [−1, 1] is 1/(2k + 1).
            PolynomialFamily::Legendre => 1.0 / (2.0 * kf + 1.0),
            // ⟨L_k²⟩ = 1 with weight e^{-x}.
            PolynomialFamily::Laguerre => 1.0,
            // ⟨(L_k^{(α)})²⟩ = Γ(k + α + 1) / (k! Γ(α + 1)) under the
            // normalised Gamma(α + 1) density.
            PolynomialFamily::GeneralizedLaguerre { alpha } => {
                (ln_gamma(kf + alpha + 1.0) - ln_gamma(kf + 1.0) - ln_gamma(alpha + 1.0)).exp()
            }
            // Jacobi with the *normalised* Beta weight
            // w(x) = (1−x)^a (1+x)^b / (2^{a+b+1} B(a+1, b+1)).
            PolynomialFamily::Jacobi { a, b } => {
                // Unnormalised h_k = 2^{a+b+1} / (2k+a+b+1)
                //   · Γ(k+a+1)Γ(k+b+1) / (Γ(k+a+b+1) k!)
                let ln_hk = (a + b + 1.0) * std::f64::consts::LN_2 - (2.0 * kf + a + b + 1.0).ln()
                    + ln_gamma(kf + a + 1.0)
                    + ln_gamma(kf + b + 1.0)
                    - ln_gamma(kf + a + b + 1.0)
                    - ln_gamma(kf + 1.0);
                // Normalising constant of the weight:
                // ∫ (1−x)^a (1+x)^b dx = 2^{a+b+1} B(a+1, b+1).
                let ln_norm =
                    (a + b + 1.0) * std::f64::consts::LN_2 + ln_gamma(a + 1.0) + ln_gamma(b + 1.0)
                        - ln_gamma(a + b + 2.0);
                (ln_hk - ln_norm).exp()
            }
        }
    }

    /// Monic three-term recurrence coefficients `(a_k, b_k)` for
    /// `π_{k+1}(x) = (x − a_k) π_k(x) − b_k π_{k−1}(x)`, used to build the
    /// Jacobi matrix for Gauss quadrature.
    pub fn monic_recurrence(&self, k: u32) -> (f64, f64) {
        let kf = k as f64;
        match *self {
            PolynomialFamily::Hermite => (0.0, kf),
            PolynomialFamily::Legendre => {
                let bk = if k == 0 {
                    0.0
                } else {
                    kf * kf / ((2.0 * kf - 1.0) * (2.0 * kf + 1.0))
                };
                (0.0, bk)
            }
            PolynomialFamily::Laguerre => (2.0 * kf + 1.0, kf * kf),
            PolynomialFamily::GeneralizedLaguerre { alpha } => {
                (2.0 * kf + alpha + 1.0, kf * (kf + alpha))
            }
            PolynomialFamily::Jacobi { a, b } => {
                let s = a + b;
                let ak = if k == 0 {
                    (b - a) / (s + 2.0)
                } else {
                    (b * b - a * a) / ((2.0 * kf + s) * (2.0 * kf + s + 2.0))
                };
                let bk = if k == 0 {
                    0.0
                } else if k == 1 {
                    4.0 * (1.0 + a) * (1.0 + b) / ((2.0 + s).powi(2) * (3.0 + s))
                } else {
                    4.0 * kf * (kf + a) * (kf + b) * (kf + s)
                        / ((2.0 * kf + s).powi(2) * (2.0 * kf + s + 1.0) * (2.0 * kf + s - 1.0))
                };
                (ak, bk)
            }
        }
    }

    /// Draws one sample of the standard random variable associated with this
    /// family (standard normal, uniform on `[-1, 1]`, exponential, Gamma or
    /// shifted Beta).
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            PolynomialFamily::Hermite => sample_standard_normal(rng),
            PolynomialFamily::Legendre => rng.gen_range(-1.0..=1.0),
            PolynomialFamily::Laguerre => sample_gamma(rng, 1.0),
            PolynomialFamily::GeneralizedLaguerre { alpha } => sample_gamma(rng, alpha + 1.0),
            PolynomialFamily::Jacobi { a, b } => {
                // Beta(b + 1, a + 1) on [0, 1] mapped to [−1, 1]; the Jacobi
                // weight (1−x)^a (1+x)^b corresponds to Beta exponents
                // (b + 1) on the +1 side and (a + 1) on the −1 side.
                let g1 = sample_gamma(rng, b + 1.0);
                let g2 = sample_gamma(rng, a + 1.0);
                let beta = g1 / (g1 + g2);
                2.0 * beta - 1.0
            }
        }
    }
}

impl std::fmt::Display for PolynomialFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolynomialFamily::Hermite => write!(f, "Hermite"),
            PolynomialFamily::Legendre => write!(f, "Legendre"),
            PolynomialFamily::Laguerre => write!(f, "Laguerre"),
            PolynomialFamily::GeneralizedLaguerre { alpha } => {
                write!(f, "GeneralizedLaguerre(alpha={alpha})")
            }
            PolynomialFamily::Jacobi { a, b } => write!(f, "Jacobi(a={a}, b={b})"),
        }
    }
}

/// `k!` as a float (exact up to 170!).
pub(crate) fn factorial(k: u32) -> f64 {
    (1..=k).fold(1.0, |acc, i| acc * i as f64)
}

/// Natural log of the Gamma function (Lanczos approximation, ~1e-13 accurate).
pub(crate) fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients (g = 7, n = 9).
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut acc = COEFFS[0];
        for (i, &c) in COEFFS.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + 7.5;
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
    }
}

/// Standard normal sample via Box–Muller (avoids needing `rand_distr`).
fn sample_standard_normal<R: rand::Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Gamma(shape, 1) sample via Marsaglia–Tsang (with the shape < 1 boost).
fn sample_gamma<R: rand::Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a + 1) · U^{1/a}.
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return sample_gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hermite_values_match_closed_forms() {
        let fam = PolynomialFamily::Hermite;
        for &x in &[-2.0, -0.5, 0.0, 1.0, 3.0f64] {
            assert!((fam.evaluate(0, x) - 1.0).abs() < 1e-14);
            assert!((fam.evaluate(1, x) - x).abs() < 1e-14);
            assert!((fam.evaluate(2, x) - (x * x - 1.0)).abs() < 1e-12);
            assert!((fam.evaluate(3, x) - (x.powi(3) - 3.0 * x)).abs() < 1e-12);
            assert!((fam.evaluate(4, x) - (x.powi(4) - 6.0 * x * x + 3.0)).abs() < 1e-11);
        }
    }

    #[test]
    fn hermite_norms_are_factorials() {
        let fam = PolynomialFamily::Hermite;
        assert_eq!(fam.norm_squared(0), 1.0);
        assert_eq!(fam.norm_squared(1), 1.0);
        assert_eq!(fam.norm_squared(2), 2.0);
        assert_eq!(fam.norm_squared(3), 6.0);
        assert_eq!(fam.norm_squared(5), 120.0);
    }

    #[test]
    fn legendre_values_match_closed_forms() {
        let fam = PolynomialFamily::Legendre;
        for &x in &[-1.0, -0.3, 0.0, 0.7, 1.0f64] {
            assert!((fam.evaluate(2, x) - 0.5 * (3.0 * x * x - 1.0)).abs() < 1e-13);
            assert!((fam.evaluate(3, x) - 0.5 * (5.0 * x.powi(3) - 3.0 * x)).abs() < 1e-13);
        }
        assert!((fam.norm_squared(2) - 0.2).abs() < 1e-15);
    }

    #[test]
    fn laguerre_values_match_closed_forms() {
        let fam = PolynomialFamily::Laguerre;
        for &x in &[0.0, 0.5, 2.0f64] {
            assert!((fam.evaluate(1, x) - (1.0 - x)).abs() < 1e-14);
            assert!((fam.evaluate(2, x) - (0.5 * x * x - 2.0 * x + 1.0)).abs() < 1e-13);
        }
    }

    #[test]
    fn jacobi_reduces_to_legendre_for_zero_exponents() {
        let jac = PolynomialFamily::Jacobi { a: 0.0, b: 0.0 };
        let leg = PolynomialFamily::Legendre;
        for k in 0..6u32 {
            for &x in &[-0.9, -0.2, 0.4, 0.8f64] {
                assert!(
                    (jac.evaluate(k, x) - leg.evaluate(k, x)).abs() < 1e-10,
                    "k = {k}, x = {x}"
                );
            }
            assert!((jac.norm_squared(k) - leg.norm_squared(k)).abs() < 1e-10);
        }
    }

    #[test]
    fn generalized_laguerre_reduces_to_laguerre_for_zero_alpha() {
        let gen = PolynomialFamily::GeneralizedLaguerre { alpha: 0.0 };
        let lag = PolynomialFamily::Laguerre;
        for k in 0..6u32 {
            for &x in &[0.1, 1.0, 4.0f64] {
                assert!((gen.evaluate(k, x) - lag.evaluate(k, x)).abs() < 1e-10);
            }
            assert!((gen.norm_squared(k) - lag.norm_squared(k)).abs() < 1e-10);
        }
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-12);
        assert!((ln_gamma(2.0)).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-11);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-11);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(PolynomialFamily::Jacobi { a: -1.5, b: 0.0 }
            .validate()
            .is_err());
        assert!(PolynomialFamily::GeneralizedLaguerre { alpha: -2.0 }
            .validate()
            .is_err());
        assert!(PolynomialFamily::Hermite.validate().is_ok());
    }

    #[test]
    fn sampling_produces_plausible_first_moments() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 20_000;
        let mean = |fam: PolynomialFamily, rng: &mut rand::rngs::StdRng| {
            (0..n).map(|_| fam.sample(rng)).sum::<f64>() / n as f64
        };
        assert!(mean(PolynomialFamily::Hermite, &mut rng).abs() < 0.05);
        assert!(mean(PolynomialFamily::Legendre, &mut rng).abs() < 0.05);
        assert!((mean(PolynomialFamily::Laguerre, &mut rng) - 1.0).abs() < 0.05);
        let g = mean(
            PolynomialFamily::GeneralizedLaguerre { alpha: 2.0 },
            &mut rng,
        );
        assert!((g - 3.0).abs() < 0.1);
    }

    #[test]
    fn display_names() {
        assert_eq!(PolynomialFamily::Hermite.to_string(), "Hermite");
        assert!(PolynomialFamily::Jacobi { a: 1.0, b: 2.0 }
            .to_string()
            .contains("Jacobi"));
    }
}
