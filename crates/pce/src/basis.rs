//! Multivariate orthogonal polynomial bases.

use crate::{basis_size, multi_indices, MultiIndex, PceError, PolynomialFamily, Result};

/// A truncated multivariate orthogonal basis `{ψ_i(ξ)}`, the span of which
/// approximates second-order random variables over `ξ = (ξ₁, …, ξ_r)`.
///
/// Each basis function is a product of univariate polynomials:
/// `ψ_i(ξ) = Π_d φ_{α_d^{(i)}}(ξ_d)` where `α^{(i)}` is the `i`-th
/// multi-index. The basis is kept in the *unnormalised* classical convention
/// of the paper (`⟨ψ_i²⟩` may differ from one); use [`OrthogonalBasis::norm_squared`]
/// when projecting.
///
/// # Example
///
/// ```
/// use opera_pce::{OrthogonalBasis, PolynomialFamily};
///
/// # fn main() -> Result<(), opera_pce::PceError> {
/// let basis = OrthogonalBasis::total_order(PolynomialFamily::Hermite, 2, 2)?;
/// // ψ₄(ξ) = ξ₁·ξ₂ in the paper's ordering.
/// assert_eq!(basis.evaluate(4, &[2.0, 3.0])?, 6.0);
/// assert_eq!(basis.norm_squared(3), 2.0); // ⟨(ξ₁²−1)²⟩ = 2
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OrthogonalBasis {
    families: Vec<PolynomialFamily>,
    order: u32,
    indices: Vec<MultiIndex>,
    norms: Vec<f64>,
}

impl OrthogonalBasis {
    /// Builds a total-order truncation where every variable uses the same
    /// polynomial family.
    ///
    /// # Errors
    ///
    /// Returns [`PceError::InvalidBasis`] for zero variables and
    /// [`PceError::InvalidParameter`] for invalid family parameters.
    pub fn total_order(family: PolynomialFamily, n_vars: usize, order: u32) -> Result<Self> {
        Self::total_order_mixed(vec![family; n_vars.max(1)], n_vars, order)
    }

    /// Builds a total-order truncation with a (possibly different) family per
    /// variable — e.g. Gaussian interconnect variations alongside uniform
    /// temperature variations.
    ///
    /// # Errors
    ///
    /// Returns [`PceError::InvalidBasis`] if `families.len() != n_vars` or
    /// `n_vars == 0`, and [`PceError::InvalidParameter`] for invalid family
    /// parameters.
    pub fn total_order_mixed(
        families: Vec<PolynomialFamily>,
        n_vars: usize,
        order: u32,
    ) -> Result<Self> {
        if n_vars == 0 {
            return Err(PceError::InvalidBasis {
                reason: "a basis needs at least one random variable".to_string(),
            });
        }
        if families.len() != n_vars {
            return Err(PceError::InvalidBasis {
                reason: format!("got {} families for {} variables", families.len(), n_vars),
            });
        }
        for f in &families {
            f.validate()?;
        }
        let indices = multi_indices(n_vars, order)?;
        let norms = indices
            .iter()
            .map(|mi| {
                mi.degrees()
                    .iter()
                    .zip(&families)
                    .map(|(&d, fam)| fam.norm_squared(d))
                    .product()
            })
            .collect();
        Ok(OrthogonalBasis {
            families,
            order,
            indices,
            norms,
        })
    }

    /// Number of basis functions `N + 1`.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Returns `true` if the basis is empty (never the case for a valid basis).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Number of random variables `r`.
    pub fn n_vars(&self) -> usize {
        self.families.len()
    }

    /// Truncation order `p`.
    pub fn order(&self) -> u32 {
        self.order
    }

    /// The polynomial family of variable `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn family(&self, d: usize) -> PolynomialFamily {
        self.families[d]
    }

    /// All per-variable families.
    pub fn families(&self) -> &[PolynomialFamily] {
        &self.families
    }

    /// The multi-index of basis function `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn multi_index(&self, i: usize) -> &MultiIndex {
        &self.indices[i]
    }

    /// All multi-indices in basis order.
    pub fn multi_indices(&self) -> &[MultiIndex] {
        &self.indices
    }

    /// Squared norm `⟨ψ_i²⟩` of basis function `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn norm_squared(&self, i: usize) -> f64 {
        self.norms[i]
    }

    /// Evaluates basis function `i` at the sample point `xi`.
    ///
    /// # Errors
    ///
    /// Returns [`PceError::DimensionMismatch`] if `xi.len() != n_vars`.
    pub fn evaluate(&self, i: usize, xi: &[f64]) -> Result<f64> {
        if xi.len() != self.n_vars() {
            return Err(PceError::DimensionMismatch {
                got: xi.len(),
                expected: self.n_vars(),
            });
        }
        let mi = &self.indices[i];
        Ok(mi
            .degrees()
            .iter()
            .zip(xi)
            .zip(&self.families)
            .map(|((&d, &x), fam)| fam.evaluate(d, x))
            .product())
    }

    /// Evaluates *all* basis functions at the sample point `xi`.
    ///
    /// This shares the univariate recurrences across basis functions and is
    /// the preferred entry point when evaluating a whole expansion.
    ///
    /// # Errors
    ///
    /// Returns [`PceError::DimensionMismatch`] if `xi.len() != n_vars`.
    pub fn evaluate_all(&self, xi: &[f64]) -> Result<Vec<f64>> {
        if xi.len() != self.n_vars() {
            return Err(PceError::DimensionMismatch {
                got: xi.len(),
                expected: self.n_vars(),
            });
        }
        // Precompute univariate values up to the truncation order.
        let per_var: Vec<Vec<f64>> = xi
            .iter()
            .zip(&self.families)
            .map(|(&x, fam)| fam.evaluate_all(self.order, x))
            .collect();
        Ok(self
            .indices
            .iter()
            .map(|mi| {
                mi.degrees()
                    .iter()
                    .enumerate()
                    .map(|(d, &deg)| per_var[d][deg as usize])
                    .product()
            })
            .collect())
    }

    /// Returns the basis index whose multi-index has degree one in variable
    /// `d` and zero elsewhere (the "pure linear" term `ξ_d`), if present.
    pub fn linear_index(&self, d: usize) -> Option<usize> {
        self.indices
            .iter()
            .position(|mi| mi.total_degree() == 1 && mi.degree(d) == 1)
    }

    /// Expected number of basis functions for the given truncation, without
    /// building the basis.
    pub fn predicted_len(n_vars: usize, order: u32) -> Option<usize> {
        basis_size(n_vars, order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadrature::tensor_rule;

    #[test]
    fn basis_size_matches_prediction() {
        let b = OrthogonalBasis::total_order(PolynomialFamily::Hermite, 3, 2).unwrap();
        assert_eq!(b.len(), 10);
        assert_eq!(OrthogonalBasis::predicted_len(3, 2), Some(10));
        assert_eq!(b.n_vars(), 3);
        assert_eq!(b.order(), 2);
    }

    #[test]
    fn hermite_two_var_order_two_matches_paper_basis() {
        let b = OrthogonalBasis::total_order(PolynomialFamily::Hermite, 2, 2).unwrap();
        let xi = [1.3, -0.7];
        let psi = b.evaluate_all(&xi).unwrap();
        let expected = [
            1.0,
            xi[0],
            xi[1],
            xi[0] * xi[0] - 1.0,
            xi[0] * xi[1],
            xi[1] * xi[1] - 1.0,
        ];
        for (p, e) in psi.iter().zip(&expected) {
            assert!((p - e).abs() < 1e-13);
        }
        // Norms 1, 1, 1, 2, 1, 2 (paper Eq. 23 weights).
        let norms: Vec<f64> = (0..6).map(|i| b.norm_squared(i)).collect();
        assert_eq!(norms, vec![1.0, 1.0, 1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn evaluate_matches_evaluate_all() {
        let b = OrthogonalBasis::total_order(PolynomialFamily::Legendre, 3, 3).unwrap();
        let xi = [0.2, -0.5, 0.9];
        let all = b.evaluate_all(&xi).unwrap();
        for (i, &ai) in all.iter().enumerate() {
            assert!((b.evaluate(i, &xi).unwrap() - ai).abs() < 1e-14);
        }
    }

    #[test]
    fn basis_functions_are_orthogonal_under_quadrature() {
        let b = OrthogonalBasis::total_order(PolynomialFamily::Hermite, 2, 3).unwrap();
        let rule = tensor_rule(b.families(), 8).unwrap();
        for i in 0..b.len() {
            for j in 0..b.len() {
                let inner =
                    rule.integrate(|x| b.evaluate(i, x).unwrap() * b.evaluate(j, x).unwrap());
                let expected = if i == j { b.norm_squared(i) } else { 0.0 };
                assert!(
                    (inner - expected).abs() < 1e-8 * b.norm_squared(i).max(1.0),
                    "⟨ψ{i}, ψ{j}⟩ = {inner}, expected {expected}"
                );
            }
        }
    }

    #[test]
    fn mixed_families_are_supported() {
        let b = OrthogonalBasis::total_order_mixed(
            vec![PolynomialFamily::Hermite, PolynomialFamily::Legendre],
            2,
            2,
        )
        .unwrap();
        assert_eq!(b.len(), 6);
        let rule = tensor_rule(b.families(), 6).unwrap();
        // Orthogonality still holds across different families.
        let inner = rule.integrate(|x| b.evaluate(1, x).unwrap() * b.evaluate(2, x).unwrap());
        assert!(inner.abs() < 1e-10);
    }

    #[test]
    fn linear_index_finds_first_order_terms() {
        let b = OrthogonalBasis::total_order(PolynomialFamily::Hermite, 3, 2).unwrap();
        for d in 0..3 {
            let idx = b.linear_index(d).unwrap();
            assert_eq!(b.multi_index(idx).degree(d), 1);
            assert_eq!(b.multi_index(idx).total_degree(), 1);
        }
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let b = OrthogonalBasis::total_order(PolynomialFamily::Hermite, 2, 2).unwrap();
        assert!(matches!(
            b.evaluate_all(&[1.0]),
            Err(PceError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn mismatched_family_count_is_rejected() {
        assert!(OrthogonalBasis::total_order_mixed(vec![PolynomialFamily::Hermite], 2, 1).is_err());
        assert!(OrthogonalBasis::total_order(PolynomialFamily::Hermite, 0, 1).is_err());
    }
}
