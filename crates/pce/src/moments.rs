//! Statistical moments of polynomial chaos expansions.
//!
//! Mean and variance follow directly from the expansion coefficients
//! (paper Eq. 23). Higher moments are obtained by integrating powers of the
//! expansion with Gauss quadrature, mirroring the paper's observation that
//! `E[xⁿ] = ⟨xⁿ⁻¹, x⟩` once an explicit representation is available.

use crate::quadrature::tensor_rule;
use crate::{PceSeries, Result};

/// First four moments of a random variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Moments {
    /// Mean `E[x]`.
    pub mean: f64,
    /// Variance `E[(x − μ)²]`.
    pub variance: f64,
    /// Skewness `E[(x − μ)³] / σ³` (0 for symmetric distributions).
    pub skewness: f64,
    /// Excess kurtosis `E[(x − μ)⁴] / σ⁴ − 3` (0 for a Gaussian).
    pub excess_kurtosis: f64,
}

impl Moments {
    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// Computes the first four moments of a PCE series by Gauss quadrature.
///
/// The quadrature uses enough points to integrate the fourth power of the
/// truncated expansion exactly, so the returned values are the exact moments
/// *of the truncated series* (which approximate the moments of the underlying
/// response).
///
/// # Errors
///
/// Propagates quadrature construction failures.
///
/// # Example
///
/// ```
/// use opera_pce::{moments::moments, OrthogonalBasis, PolynomialFamily, PceSeries};
///
/// # fn main() -> Result<(), opera_pce::PceError> {
/// let basis = OrthogonalBasis::total_order(PolynomialFamily::Hermite, 1, 2)?;
/// // A pure Gaussian x = μ + σ ξ.
/// let x = PceSeries::from_coefficients(&basis, vec![1.0, 2.0, 0.0])?;
/// let m = moments(&x)?;
/// assert!((m.mean - 1.0).abs() < 1e-12);
/// assert!((m.variance - 4.0).abs() < 1e-12);
/// assert!(m.skewness.abs() < 1e-12);
/// assert!(m.excess_kurtosis.abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn moments(series: &PceSeries) -> Result<Moments> {
    let basis = series.basis();
    // x⁴ has per-variable degree 4p ⇒ 2p + 1 points are enough
    // (2(2p + 1) − 1 = 4p + 1 ≥ 4p).
    let points = 2 * basis.order() as usize + 1;
    let rule = tensor_rule(basis.families(), points.max(2))?;
    let mean = series.mean();
    let mut m2 = 0.0;
    let mut m3 = 0.0;
    let mut m4 = 0.0;
    for (node, &w) in rule.nodes.iter().zip(&rule.weights) {
        let v = series.evaluate(node)? - mean;
        let v2 = v * v;
        m2 += w * v2;
        m3 += w * v2 * v;
        m4 += w * v2 * v2;
    }
    let sigma = m2.sqrt();
    let (skewness, excess_kurtosis) = if sigma > 0.0 {
        (m3 / (sigma * sigma * sigma), m4 / (m2 * m2) - 3.0)
    } else {
        (0.0, 0.0)
    };
    Ok(Moments {
        mean,
        variance: m2,
        skewness,
        excess_kurtosis,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OrthogonalBasis, PolynomialFamily};

    #[test]
    fn quadrature_moments_match_coefficient_formulas() {
        let basis = OrthogonalBasis::total_order(PolynomialFamily::Hermite, 2, 2).unwrap();
        let s =
            PceSeries::from_coefficients(&basis, vec![3.0, 0.4, -0.2, 0.1, 0.05, -0.03]).unwrap();
        let m = moments(&s).unwrap();
        assert!((m.mean - s.mean()).abs() < 1e-12);
        assert!((m.variance - s.variance()).abs() < 1e-10);
    }

    #[test]
    fn chi_square_like_series_has_positive_skewness() {
        // x = ξ² − 1 (centred chi-square with 1 dof): skewness = 2√2,
        // excess kurtosis = 12.
        let basis = OrthogonalBasis::total_order(PolynomialFamily::Hermite, 1, 2).unwrap();
        let s = PceSeries::from_coefficients(&basis, vec![0.0, 0.0, 1.0]).unwrap();
        let m = moments(&s).unwrap();
        assert!((m.variance - 2.0).abs() < 1e-10);
        assert!((m.skewness - 2.0 * 2.0f64.sqrt()).abs() < 1e-8);
        assert!((m.excess_kurtosis - 12.0).abs() < 1e-7);
    }

    #[test]
    fn constant_series_has_zero_higher_moments() {
        let basis = OrthogonalBasis::total_order(PolynomialFamily::Hermite, 1, 1).unwrap();
        let s = PceSeries::constant(&basis, 5.0);
        let m = moments(&s).unwrap();
        assert_eq!(m.mean, 5.0);
        assert_eq!(m.variance, 0.0);
        assert_eq!(m.skewness, 0.0);
        assert_eq!(m.std_dev(), 0.0);
    }

    #[test]
    fn uniform_series_has_negative_excess_kurtosis() {
        // x = ξ with ξ uniform on [−1, 1]: kurtosis = 1.8 ⇒ excess −1.2.
        let basis = OrthogonalBasis::total_order(PolynomialFamily::Legendre, 1, 1).unwrap();
        let s = PceSeries::from_coefficients(&basis, vec![0.0, 1.0]).unwrap();
        let m = moments(&s).unwrap();
        assert!((m.variance - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.excess_kurtosis + 1.2).abs() < 1e-10);
    }
}
