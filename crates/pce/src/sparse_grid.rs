//! Multi-dimensional quadrature grids for stochastic collocation.
//!
//! Stochastic collocation evaluates a model at a finite set of points in the
//! random space and recovers the polynomial-chaos coefficients by discrete
//! projection. This module builds the point sets from the 1-D Gauss rules of
//! [`crate::quadrature`]:
//!
//! * [`tensor_grid`] — the full tensor product, exact but exponential in the
//!   number of variables;
//! * [`smolyak_grid`] — the Smolyak sparse grid, a combination-technique sum
//!   of small anisotropic tensor grids that retains most of the polynomial
//!   exactness at a fraction of the node count.
//!
//! The 1-D rules grow linearly with the level (`m(ℓ) = 2ℓ − 1` points, see
//! [`level_points`]), so every rule has an odd point count; for families
//! symmetric about zero (Hermite, Legendre) the centre node is shared across
//! levels and the node [deduplication](QuadratureGrid) merges it, which is
//! what makes the linear-growth hierarchy "weakly nested". Combination
//! coefficients can be negative, so individual grid weights may be negative
//! too — the weights still sum to one because every constituent rule
//! integrates the constant exactly.

// An ordered map: grid assembly feeds float accumulation, and an ordered
// key type rules out nondeterministic iteration orders by construction (L004).
use std::collections::BTreeMap;

use crate::quadrature::{gauss_rule, GaussRule};
use crate::{multi_indices, OrthogonalBasis, PceError, PolynomialFamily, Result};

/// Two nodes whose coordinates all agree within this absolute tolerance are
/// merged into one grid point (their weights are summed). Gauss nodes of the
/// rules used here are separated by many orders of magnitude more than this.
pub const NODE_MERGE_TOLERANCE: f64 = 1e-10;

/// A multi-dimensional quadrature grid: deduplicated nodes with (possibly
/// negative) weights summing to one.
///
/// # Example
///
/// ```
/// use opera_pce::sparse_grid::smolyak_grid;
/// use opera_pce::PolynomialFamily;
///
/// # fn main() -> Result<(), opera_pce::PceError> {
/// let families = [PolynomialFamily::Hermite; 2];
/// let grid = smolyak_grid(&families, 2)?;
/// // E[ξ₁² ξ₂²] = 1 for independent standard Gaussians (total degree 4,
/// // within the level-2 exactness of total degree 5).
/// assert!((grid.integrate(|x| x[0] * x[0] * x[1] * x[1]) - 1.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuadratureGrid {
    n_vars: usize,
    nodes: Vec<Vec<f64>>,
    weights: Vec<f64>,
}

impl QuadratureGrid {
    /// The grid points, one `n_vars`-length coordinate vector per node.
    pub fn nodes(&self) -> &[Vec<f64>] {
        &self.nodes
    }

    /// The node weights (summing to one; Smolyak weights may be negative).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of random variables the grid spans.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Integrates a multivariate function against the grid.
    pub fn integrate(&self, mut f: impl FnMut(&[f64]) -> f64) -> f64 {
        self.nodes
            .iter()
            .zip(&self.weights)
            .map(|(x, &w)| w * f(x))
            .sum()
    }

    /// Discrete (pseudo-spectral) projection of a scalar function onto an
    /// orthogonal basis: returns the coefficients
    /// `a_i = Σ_q w_q ψ_i(ξ_q) f(ξ_q) / ⟨ψ_i²⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`PceError::DimensionMismatch`] if the basis spans a different
    /// number of variables than the grid.
    pub fn project(
        &self,
        basis: &OrthogonalBasis,
        mut f: impl FnMut(&[f64]) -> f64,
    ) -> Result<Vec<f64>> {
        if basis.n_vars() != self.n_vars {
            return Err(PceError::DimensionMismatch {
                got: basis.n_vars(),
                expected: self.n_vars,
            });
        }
        let mut coeffs = vec![0.0; basis.len()];
        for (node, &w) in self.nodes.iter().zip(&self.weights) {
            let psi = basis.evaluate_all(node)?;
            let value = f(node);
            for (c, p) in coeffs.iter_mut().zip(&psi) {
                *c += w * p * value;
            }
        }
        for (i, c) in coeffs.iter_mut().enumerate() {
            *c /= basis.norm_squared(i);
        }
        Ok(coeffs)
    }
}

/// Accumulates weighted nodes, merging points whose quantised coordinates
/// coincide. Node order is first-insertion order, which is deterministic for
/// the deterministic construction loops below.
struct GridAccumulator {
    n_vars: usize,
    nodes: Vec<Vec<f64>>,
    weights: Vec<f64>,
    /// Sum of |contribution| per node, to tell genuine combination-technique
    /// cancellation apart from an intrinsically tiny single-rule weight.
    magnitudes: Vec<f64>,
    index: BTreeMap<Vec<i64>, usize>,
}

impl GridAccumulator {
    fn new(n_vars: usize) -> Self {
        GridAccumulator {
            n_vars,
            nodes: Vec::new(),
            weights: Vec::new(),
            magnitudes: Vec::new(),
            index: BTreeMap::new(),
        }
    }

    fn add(&mut self, node: Vec<f64>, weight: f64) {
        let key: Vec<i64> = node
            .iter()
            .map(|&x| (x / NODE_MERGE_TOLERANCE).round() as i64)
            .collect();
        match self.index.get(&key) {
            Some(&q) => {
                self.weights[q] += weight;
                self.magnitudes[q] += weight.abs();
            }
            None => {
                self.index.insert(key, self.nodes.len());
                self.nodes.push(node);
                self.weights.push(weight);
                self.magnitudes.push(weight.abs());
            }
        }
    }

    /// Finishes the grid, dropping nodes whose signed contributions
    /// *cancelled* to (numerically) nothing — they would cost a full model
    /// solve and contribute zero. The test is relative to the node's own
    /// summed |contributions|, so an extreme Gauss node whose single weight
    /// is legitimately tiny is never dropped (dropping it would break the
    /// advertised polynomial exactness: `w·x^{2m}` can be O(1) even when `w`
    /// is below any absolute threshold).
    fn finish(self) -> QuadratureGrid {
        let mut nodes = Vec::with_capacity(self.nodes.len());
        let mut weights = Vec::with_capacity(self.weights.len());
        for ((node, w), magnitude) in self
            .nodes
            .into_iter()
            .zip(self.weights)
            .zip(self.magnitudes)
        {
            if w.abs() > 1e-14 * magnitude {
                nodes.push(node);
                weights.push(w);
            }
        }
        QuadratureGrid {
            n_vars: self.n_vars,
            nodes,
            weights,
        }
    }
}

/// Number of points of the 1-D rule at (1-based) level `ℓ`: `m(ℓ) = 2ℓ − 1`.
///
/// Linear growth keeps Smolyak node counts small for non-nested Gauss rules,
/// and the odd count means every rule of a symmetric family contains the
/// centre node, so consecutive levels share at least that point.
///
/// # Panics
///
/// Panics if `level_1d == 0` (levels are 1-based).
pub fn level_points(level_1d: u32) -> usize {
    assert!(level_1d >= 1, "1-D quadrature levels are 1-based");
    2 * level_1d as usize - 1
}

/// Builds the full tensor-product grid at refinement level `level ≥ 0`:
/// every dimension uses the `m(level + 1) = 2·level + 1` point Gauss rule of
/// its family. Exact for polynomials of *per-variable* degree up to
/// `2·m − 1`, but the node count grows as `m^d`.
///
/// # Errors
///
/// Propagates [`gauss_rule`] errors and rejects an empty family list.
pub fn tensor_grid(families: &[PolynomialFamily], level: u32) -> Result<QuadratureGrid> {
    if families.is_empty() {
        return Err(PceError::InvalidBasis {
            reason: "a quadrature grid needs at least one variable".to_string(),
        });
    }
    let rules: Vec<GaussRule> = families
        .iter()
        .map(|&f| gauss_rule(f, level_points(level + 1)))
        .collect::<Result<_>>()?;
    let mut acc = GridAccumulator::new(families.len());
    accumulate_tensor(&mut acc, &rules, 1.0);
    Ok(acc.finish())
}

/// Builds the Smolyak sparse grid at refinement level `level ≥ 0` via the
/// combination technique:
///
/// ```text
/// A(L, d) = Σ_{L−d+1 ≤ |i|−d ≤ L} (−1)^{L+d−|i|} · C(d−1, L+d−|i|)
///           · (U^{i_1} ⊗ … ⊗ U^{i_d})
/// ```
///
/// where `U^{ℓ}` is the `m(ℓ)`-point Gauss rule of the corresponding family.
/// Nodes shared between constituent tensor grids are merged and their
/// (signed) weights summed. Exact for polynomials of *total* degree up to
/// `2·level + 1`; at `level == 0` the grid degenerates to the single
/// mean-value node.
///
/// # Errors
///
/// Propagates [`gauss_rule`] errors and rejects an empty family list.
pub fn smolyak_grid(families: &[PolynomialFamily], level: u32) -> Result<QuadratureGrid> {
    if families.is_empty() {
        return Err(PceError::InvalidBasis {
            reason: "a quadrature grid needs at least one variable".to_string(),
        });
    }
    let d = families.len();
    // 1-D rules per dimension and level, indexed by (dimension, level − 1).
    let mut rules: Vec<Vec<GaussRule>> = Vec::with_capacity(d);
    for &family in families {
        let per_level: Vec<GaussRule> = (1..=level + 1)
            .map(|l| gauss_rule(family, level_points(l)))
            .collect::<Result<_>>()?;
        rules.push(per_level);
    }

    let mut acc = GridAccumulator::new(d);
    // Enumerate offsets j = i − 1 (component-wise) with |j| ≤ level; the
    // combination coefficient is (−1)^t · C(d−1, t) with t = level − |j|,
    // which vanishes for t > d − 1.
    for mi in multi_indices(d, level)? {
        let t = level - mi.total_degree();
        if t as usize > d - 1 {
            continue;
        }
        let sign = if t.is_multiple_of(2) { 1.0 } else { -1.0 };
        let coeff = sign * binomial(d - 1, t as usize);
        let selected: Vec<&GaussRule> = mi
            .degrees()
            .iter()
            .enumerate()
            .map(|(dim, &j)| &rules[dim][j as usize])
            .collect();
        accumulate_anisotropic_tensor(&mut acc, &selected, coeff);
    }
    Ok(acc.finish())
}

/// Adds the tensor product of per-dimension rules (all of the same type) to
/// the accumulator, scaled by `coeff`.
fn accumulate_tensor(acc: &mut GridAccumulator, rules: &[GaussRule], coeff: f64) {
    let refs: Vec<&GaussRule> = rules.iter().collect();
    accumulate_anisotropic_tensor(acc, &refs, coeff);
}

/// Adds the tensor product of (possibly different-size) per-dimension rules
/// to the accumulator, scaled by `coeff`, via a mixed-radix counter.
fn accumulate_anisotropic_tensor(acc: &mut GridAccumulator, rules: &[&GaussRule], coeff: f64) {
    let d = rules.len();
    let mut counter = vec![0usize; d];
    loop {
        let mut node = Vec::with_capacity(d);
        let mut w = coeff;
        for (dim, &c) in counter.iter().enumerate() {
            node.push(rules[dim].nodes[c]);
            w *= rules[dim].weights[c];
        }
        acc.add(node, w);
        let mut dim = 0;
        loop {
            if dim == d {
                return;
            }
            counter[dim] += 1;
            if counter[dim] < rules[dim].len() {
                break;
            }
            counter[dim] = 0;
            dim += 1;
        }
    }
}

/// Binomial coefficient `C(n, k)` as a float (small arguments only).
fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut result = 1.0;
    for step in 0..k {
        result = result * (n - step) as f64 / (step + 1) as f64;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    const HERMITE_2D: [PolynomialFamily; 2] = [PolynomialFamily::Hermite; 2];

    #[test]
    fn one_dimensional_smolyak_is_a_plain_gauss_rule() {
        for level in 0..=4u32 {
            let grid = smolyak_grid(&[PolynomialFamily::Hermite], level).unwrap();
            let rule = gauss_rule(PolynomialFamily::Hermite, level_points(level + 1)).unwrap();
            assert_eq!(grid.len(), rule.len());
            let mut pairs: Vec<(f64, f64)> = grid
                .nodes()
                .iter()
                .map(|n| n[0])
                .zip(grid.weights().iter().copied())
                .collect();
            pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
            for ((x, w), (rx, rw)) in pairs.iter().zip(rule.nodes.iter().zip(&rule.weights)) {
                assert!((x - rx).abs() < 1e-12);
                assert!((w - rw).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn weights_sum_to_one_even_with_negative_combination_terms() {
        let mut saw_negative = false;
        for d in 1..=4usize {
            let families = vec![PolynomialFamily::Hermite; d];
            for level in 0..=3u32 {
                let grid = smolyak_grid(&families, level).unwrap();
                let total: f64 = grid.weights().iter().sum();
                assert!(
                    (total - 1.0).abs() < 1e-12,
                    "d = {d}, level = {level}: weights sum to {total}"
                );
                saw_negative |= grid.weights().iter().any(|&w| w < 0.0);
            }
        }
        // The combination technique must produce signed weights somewhere in
        // this sweep (multi-dimensional grids at higher levels).
        assert!(
            saw_negative,
            "no negative Smolyak weight in the whole sweep"
        );
    }

    #[test]
    fn smolyak_is_exact_for_total_degree_up_to_2l_plus_1() {
        // Gaussian moments: E[ξ^{2m}] = (2m − 1)!!.
        let dfact = |m: i32| (1..=m).map(|i| (2 * i - 1) as f64).product::<f64>();
        let grid = smolyak_grid(&HERMITE_2D, 2).unwrap();
        // Total degree 4 ≤ 5: exact.
        assert!((grid.integrate(|x| x[0].powi(4)) - dfact(2)).abs() < 1e-9);
        assert!((grid.integrate(|x| x[0].powi(2) * x[1].powi(2)) - 1.0).abs() < 1e-10);
        // Odd total degrees vanish by symmetry.
        assert!(grid.integrate(|x| x[0].powi(3) * x[1].powi(2)).abs() < 1e-9);
        // Degree 6 > 5 is *not* integrated exactly by level 2 but is by level 3.
        let level3 = smolyak_grid(&HERMITE_2D, 3).unwrap();
        assert!((level3.integrate(|x| x[0].powi(6)) - dfact(3)).abs() < 1e-8);
    }

    #[test]
    fn sparse_grid_is_much_smaller_than_the_tensor_grid() {
        let families = vec![PolynomialFamily::Hermite; 4];
        let sparse = smolyak_grid(&families, 2).unwrap();
        let tensor = tensor_grid(&families, 2).unwrap();
        assert_eq!(tensor.len(), 5usize.pow(4));
        assert!(
            sparse.len() * 5 < tensor.len(),
            "sparse {} vs tensor {}",
            sparse.len(),
            tensor.len()
        );
        // Both integrate the constant exactly.
        assert!((sparse.integrate(|_| 1.0) - 1.0).abs() < 1e-12);
        assert!((tensor.integrate(|_| 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn centre_node_is_deduplicated_across_constituent_grids() {
        let grid = smolyak_grid(&HERMITE_2D, 2).unwrap();
        let centre_count = grid
            .nodes()
            .iter()
            .filter(|n| n.iter().all(|&x| x.abs() < 1e-9))
            .count();
        assert_eq!(centre_count, 1, "the origin must appear exactly once");
        // No two remaining nodes coincide.
        for (a, na) in grid.nodes().iter().enumerate() {
            for nb in grid.nodes().iter().skip(a + 1) {
                let dist: f64 = na
                    .iter()
                    .zip(nb)
                    .map(|(x, y)| (x - y).abs())
                    .fold(0.0, f64::max);
                assert!(dist > 1e-9, "duplicate nodes survived deduplication");
            }
        }
    }

    #[test]
    fn projection_recovers_polynomial_chaos_coefficients() {
        let basis = OrthogonalBasis::total_order(PolynomialFamily::Hermite, 2, 2).unwrap();
        // f(ξ) = 3 + 2ξ₁ − ξ₂ + 0.5(ξ₁² − 1) + 0.25 ξ₁ξ₂ in the paper basis.
        let truth = [3.0, 2.0, -1.0, 0.5, 0.25, 0.0];
        let f =
            |x: &[f64]| 3.0 + 2.0 * x[0] - x[1] + 0.5 * (x[0] * x[0] - 1.0) + 0.25 * x[0] * x[1];
        for grid in [
            smolyak_grid(&HERMITE_2D, 2).unwrap(),
            tensor_grid(&HERMITE_2D, 2).unwrap(),
        ] {
            let coeffs = grid.project(&basis, f).unwrap();
            for (c, t) in coeffs.iter().zip(&truth) {
                assert!((c - t).abs() < 1e-10, "got {coeffs:?}");
            }
        }
        // Dimension mismatch is reported.
        let basis_3 = OrthogonalBasis::total_order(PolynomialFamily::Hermite, 3, 2).unwrap();
        let grid = smolyak_grid(&HERMITE_2D, 1).unwrap();
        assert!(grid.project(&basis_3, |_| 1.0).is_err());
    }

    #[test]
    fn mixed_families_and_errors() {
        let grid =
            smolyak_grid(&[PolynomialFamily::Hermite, PolynomialFamily::Legendre], 2).unwrap();
        // E[ξ² x²] = 1 · 1/3 for a Gaussian times a U(−1, 1).
        let got = grid.integrate(|x| x[0] * x[0] * x[1] * x[1]);
        assert!((got - 1.0 / 3.0).abs() < 1e-10, "got {got}");
        assert!(smolyak_grid(&[], 1).is_err());
        assert!(tensor_grid(&[], 1).is_err());
        assert_eq!(level_points(1), 1);
        assert_eq!(level_points(3), 5);
        assert!((binomial(4, 2) - 6.0).abs() < 1e-12);
        assert_eq!(binomial(2, 5), 0.0);
    }

    #[test]
    fn tiny_extreme_node_weights_survive_deep_grids() {
        // A 25-point Hermite rule has extreme-node weights far below 1e-14
        // of the centre weight; the cancellation cutoff must not drop them —
        // high moments are dominated by exactly those nodes.
        let level = 12u32;
        let grid = tensor_grid(&[PolynomialFamily::Hermite], level).unwrap();
        let rule = gauss_rule(PolynomialFamily::Hermite, level_points(level + 1)).unwrap();
        assert_eq!(grid.len(), rule.len(), "an extreme node was dropped");
        let tiniest = rule.weights.iter().cloned().fold(f64::INFINITY, f64::min);
        let largest = rule.weights.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            tiniest < 1e-14 * largest,
            "test premise: weights span >1e14"
        );
        // E[ξ^{30}] = 29!! — only computable if the far nodes are present.
        let dfact_15: f64 = (1..=15).map(|i| (2 * i - 1) as f64).product();
        let moment = grid.integrate(|x| x[0].powi(30));
        assert!(
            (moment - dfact_15).abs() < 1e-6 * dfact_15,
            "E[ξ^30] = {moment}, expected {dfact_15}"
        );
    }

    #[test]
    fn level_zero_grid_is_the_single_mean_node() {
        let grid = smolyak_grid(&HERMITE_2D, 0).unwrap();
        assert_eq!(grid.len(), 1);
        assert!(grid.nodes()[0].iter().all(|&x| x.abs() < 1e-12));
        assert!((grid.weights()[0] - 1.0).abs() < 1e-12);
        assert_eq!(grid.n_vars(), 2);
        assert!(!grid.is_empty());
    }
}
