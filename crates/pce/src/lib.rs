//! Orthogonal polynomial expansions (polynomial chaos) for stochastic
//! circuit analysis.
//!
//! This crate implements the mathematical machinery behind OPERA
//! ("Orthogonal Polynomial Expansions for Response Analysis", DATE 2005):
//! representing a second-order random quantity `x(ξ)` as a truncated series
//!
//! ```text
//! x(ξ) ≈ Σ_i a_i ψ_i(ξ),      ξ = (ξ₁, …, ξ_r)
//! ```
//!
//! where `{ψ_i}` are orthogonal polynomials of the underlying random
//! variables chosen according to the Askey scheme (Hermite for Gaussian,
//! Legendre for uniform, Laguerre for Gamma/exponential, Jacobi for Beta).
//!
//! The main types are:
//!
//! * [`PolynomialFamily`] — univariate orthogonal families with recurrences,
//!   norms and probability weights.
//! * [`MultiIndex`] / [`multi_indices`] — graded multi-index sets defining a
//!   total-order truncation.
//! * [`OrthogonalBasis`] — the tensorised multivariate basis `{ψ_i}`.
//! * [`quadrature`] — Gauss quadrature rules (Golub–Welsch via Sturm
//!   bisection) used for inner products and moments.
//! * [`sparse_grid`] — multi-dimensional collocation grids: full tensor
//!   products and Smolyak sparse grids (combination technique) with node
//!   deduplication and pseudo-spectral projection.
//! * [`GalerkinCoupling`] — the tensors `⟨ψ_i ψ_j⟩` and `⟨ξ_d ψ_i ψ_j⟩`
//!   needed to assemble the spectral (Galerkin) system of the paper.
//! * [`PceSeries`] — a scalar expansion with mean/variance/evaluation and
//!   sampling helpers.
//! * [`gram_charlier`] — PDF reconstruction from moments.
//!
//! # Example
//!
//! ```
//! use opera_pce::{OrthogonalBasis, PolynomialFamily, PceSeries};
//!
//! # fn main() -> Result<(), opera_pce::PceError> {
//! // Order-2 expansion in 2 Gaussian variables: 6 basis functions,
//! // exactly the basis of Eq. (15) in the paper.
//! let basis = OrthogonalBasis::total_order(PolynomialFamily::Hermite, 2, 2)?;
//! assert_eq!(basis.len(), 6);
//!
//! // x(ξ) = 1 + 0.5 ξ₁ + 0.1 (ξ₂² − 1)
//! let series = PceSeries::from_coefficients(&basis, vec![1.0, 0.5, 0.0, 0.0, 0.0, 0.1])?;
//! assert!((series.mean() - 1.0).abs() < 1e-15);
//! assert!((series.variance() - (0.25 + 0.02)).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod basis;
mod error;
mod family;
mod galerkin;
mod multi_index;
mod series;

pub mod gram_charlier;
pub mod moments;
pub mod quadrature;
pub mod sampling;
pub mod sparse_grid;

pub use basis::OrthogonalBasis;
pub use error::PceError;
pub use family::PolynomialFamily;
pub use galerkin::GalerkinCoupling;
pub use multi_index::{basis_size, multi_indices, MultiIndex};
pub use series::PceSeries;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, PceError>;
