//! Graded multi-index sets for total-order polynomial chaos truncations.

use crate::{PceError, Result};

/// A multi-index `α = (α₁, …, α_r)`: the per-variable polynomial degrees of
/// one multivariate basis function `ψ_α(ξ) = Π_d φ_{α_d}(ξ_d)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MultiIndex(Vec<u32>);

// Manual, total ordering (lexicographic over degrees): the derived
// `PartialOrd` would route through `partial_cmp`, which `clippy.toml`
// disallows workspace-wide in favour of total orderings.
impl Ord for MultiIndex {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl PartialOrd for MultiIndex {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl MultiIndex {
    /// Creates a multi-index from per-variable degrees.
    pub fn new(degrees: Vec<u32>) -> Self {
        MultiIndex(degrees)
    }

    /// The zero multi-index (constant basis function) in `n_vars` variables.
    pub fn zero(n_vars: usize) -> Self {
        MultiIndex(vec![0; n_vars])
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.0.len()
    }

    /// Total degree `|α| = Σ_d α_d`.
    pub fn total_degree(&self) -> u32 {
        self.0.iter().sum()
    }

    /// Degree of variable `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn degree(&self, d: usize) -> u32 {
        self.0[d]
    }

    /// The per-variable degrees.
    pub fn degrees(&self) -> &[u32] {
        &self.0
    }

    /// Returns `true` if this is the constant (all-zero) index.
    pub fn is_constant(&self) -> bool {
        self.0.iter().all(|&d| d == 0)
    }
}

impl std::fmt::Display for MultiIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

/// Number of basis functions in a total-order truncation:
/// `N + 1 = Σ_{k=0}^{p} C(n − 1 + k, k) = C(n + p, p)`
/// (Eq. (8) of the paper).
///
/// Returns `None` on overflow.
pub fn basis_size(n_vars: usize, order: u32) -> Option<usize> {
    // C(n + p, p) computed incrementally.
    let mut result: u128 = 1;
    for k in 1..=(order as u128) {
        result = result.checked_mul(n_vars as u128 + k)?;
        result /= k;
    }
    usize::try_from(result).ok()
}

/// Enumerates all multi-indices with `n_vars` variables and total degree at
/// most `order`, in graded order: sorted by total degree first, then
/// lexicographically with the *first* variable varying slowest.
///
/// For two Gaussian variables at order 2 this yields exactly the ordering of
/// Eq. (15) in the paper: `1, ξ₁, ξ₂, ξ₁²−1, ξ₁ξ₂, ξ₂²−1`.
///
/// # Errors
///
/// Returns [`PceError::InvalidBasis`] when `n_vars == 0` or the basis size
/// overflows `usize`.
pub fn multi_indices(n_vars: usize, order: u32) -> Result<Vec<MultiIndex>> {
    if n_vars == 0 {
        return Err(PceError::InvalidBasis {
            reason: "a basis needs at least one random variable".to_string(),
        });
    }
    let expected = basis_size(n_vars, order).ok_or_else(|| PceError::InvalidBasis {
        reason: format!("basis size overflows for n_vars = {n_vars}, order = {order}"),
    })?;
    let mut out = Vec::with_capacity(expected);
    let mut current = vec![0u32; n_vars];
    for total in 0..=order {
        enumerate_fixed_degree(&mut current, 0, total, &mut out);
    }
    debug_assert_eq!(out.len(), expected);
    Ok(out)
}

/// Recursively enumerates multi-indices of exactly `remaining` total degree,
/// assigning variables from position `pos` onward, largest degree to the
/// first variable (lexicographic descending on the leading variable).
fn enumerate_fixed_degree(
    current: &mut Vec<u32>,
    pos: usize,
    remaining: u32,
    out: &mut Vec<MultiIndex>,
) {
    if pos == current.len() - 1 {
        current[pos] = remaining;
        out.push(MultiIndex::new(current.clone()));
        current[pos] = 0;
        return;
    }
    // Assign the current variable from the highest degree downward so that
    // e.g. (2,0) precedes (1,1) precedes (0,2), matching the paper's order
    // ξ₁²−1, ξ₁ξ₂, ξ₂²−1.
    for d in (0..=remaining).rev() {
        current[pos] = d;
        enumerate_fixed_degree(current, pos + 1, remaining - d, out);
    }
    current[pos] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_size_matches_binomial_formula() {
        assert_eq!(basis_size(1, 3), Some(4));
        assert_eq!(basis_size(2, 2), Some(6));
        assert_eq!(basis_size(3, 2), Some(10));
        assert_eq!(basis_size(3, 3), Some(20));
        assert_eq!(basis_size(5, 0), Some(1));
    }

    #[test]
    fn two_variable_order_two_matches_paper_ordering() {
        let idx = multi_indices(2, 2).unwrap();
        let expected: Vec<Vec<u32>> = vec![
            vec![0, 0], // 1
            vec![1, 0], // ξ₁
            vec![0, 1], // ξ₂
            vec![2, 0], // ξ₁² − 1
            vec![1, 1], // ξ₁ ξ₂
            vec![0, 2], // ξ₂² − 1
        ];
        let got: Vec<Vec<u32>> = idx.iter().map(|m| m.degrees().to_vec()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn count_matches_basis_size_for_various_truncations() {
        for n in 1..=4 {
            for p in 0..=4 {
                let idx = multi_indices(n, p).unwrap();
                assert_eq!(idx.len(), basis_size(n, p).unwrap(), "n={n}, p={p}");
                // All degrees within the bound.
                assert!(idx.iter().all(|m| m.total_degree() <= p));
                // No duplicates.
                let mut sorted = idx.clone();
                sorted.sort();
                sorted.dedup();
                assert_eq!(sorted.len(), idx.len());
            }
        }
    }

    #[test]
    fn graded_ordering_is_nondecreasing_in_total_degree() {
        let idx = multi_indices(3, 3).unwrap();
        for w in idx.windows(2) {
            assert!(w[0].total_degree() <= w[1].total_degree());
        }
        assert!(idx[0].is_constant());
    }

    #[test]
    fn zero_variables_is_rejected() {
        assert!(multi_indices(0, 2).is_err());
    }

    #[test]
    fn display_formats_degrees() {
        let m = MultiIndex::new(vec![1, 0, 2]);
        assert_eq!(m.to_string(), "(1,0,2)");
        assert_eq!(m.total_degree(), 3);
        assert_eq!(m.degree(2), 2);
        assert_eq!(MultiIndex::zero(2), MultiIndex::new(vec![0, 0]));
    }
}
