//! Sampling of the standard random variables underlying a basis.
//!
//! Monte Carlo comparison runs (the paper's baseline) and PDF estimation both
//! need samples of `ξ = (ξ₁, …, ξ_r)` drawn from the joint distribution the
//! basis is orthogonal against. These helpers keep the sampling deterministic
//! (seeded) so experiments are reproducible.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{OrthogonalBasis, PceSeries, Result};

/// Draws `count` independent samples of the standard random vector for the
/// given basis using a seeded RNG.
///
/// # Example
///
/// ```
/// use opera_pce::{sampling, OrthogonalBasis, PolynomialFamily};
///
/// # fn main() -> Result<(), opera_pce::PceError> {
/// let basis = OrthogonalBasis::total_order(PolynomialFamily::Hermite, 2, 2)?;
/// let samples = sampling::sample_standard(&basis, 100, 42);
/// assert_eq!(samples.len(), 100);
/// assert_eq!(samples[0].len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn sample_standard(basis: &OrthogonalBasis, count: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    sample_standard_with(basis, count, &mut rng)
}

/// Draws `count` samples using a caller-provided RNG.
pub fn sample_standard_with<R: rand::Rng + ?Sized>(
    basis: &OrthogonalBasis,
    count: usize,
    rng: &mut R,
) -> Vec<Vec<f64>> {
    (0..count)
        .map(|_| basis.families().iter().map(|fam| fam.sample(rng)).collect())
        .collect()
}

/// Evaluates a PCE series at each sample point.
///
/// # Errors
///
/// Returns a dimension-mismatch error if a sample has the wrong length.
pub fn evaluate_at_samples(series: &PceSeries, samples: &[Vec<f64>]) -> Result<Vec<f64>> {
    samples.iter().map(|xi| series.evaluate(xi)).collect()
}

/// Empirical mean and variance (unbiased) of a sample set.
///
/// Returns `(0.0, 0.0)` for an empty slice.
pub fn sample_mean_variance(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
    (mean, var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OrthogonalBasis, PolynomialFamily};

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let basis = OrthogonalBasis::total_order(PolynomialFamily::Hermite, 3, 2).unwrap();
        let a = sample_standard(&basis, 10, 7);
        let b = sample_standard(&basis, 10, 7);
        let c = sample_standard(&basis, 10, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sampled_series_statistics_match_analytic_moments() {
        let basis = OrthogonalBasis::total_order(PolynomialFamily::Hermite, 2, 2).unwrap();
        let series =
            PceSeries::from_coefficients(&basis, vec![1.0, 0.5, -0.25, 0.1, 0.0, 0.05]).unwrap();
        let samples = sample_standard(&basis, 40_000, 3);
        let values = evaluate_at_samples(&series, &samples).unwrap();
        let (mean, var) = sample_mean_variance(&values);
        assert!((mean - series.mean()).abs() < 0.02);
        assert!((var - series.variance()).abs() < 0.03);
    }

    #[test]
    fn empty_and_single_samples_are_handled() {
        assert_eq!(sample_mean_variance(&[]), (0.0, 0.0));
        assert_eq!(sample_mean_variance(&[3.0]), (3.0, 0.0));
    }
}
