//! Error type for polynomial chaos operations.

use std::error::Error;
use std::fmt;

/// Errors produced by polynomial chaos construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum PceError {
    /// The requested basis would be empty or malformed.
    InvalidBasis {
        /// Explanation of what was wrong (zero variables, order overflow, …).
        reason: String,
    },
    /// A coefficient vector does not match the basis size.
    CoefficientLengthMismatch {
        /// Number of coefficients supplied.
        got: usize,
        /// Number of basis functions expected.
        expected: usize,
    },
    /// A sample point has the wrong number of variables.
    DimensionMismatch {
        /// Number of coordinates supplied.
        got: usize,
        /// Number of variables expected.
        expected: usize,
    },
    /// An invalid parameter was supplied (e.g. a non-positive Jacobi
    /// exponent or a quadrature rule with zero points).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The offending value, formatted.
        value: String,
    },
    /// Two operands use different bases.
    BasisMismatch,
}

impl fmt::Display for PceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PceError::InvalidBasis { reason } => write!(f, "invalid basis: {reason}"),
            PceError::CoefficientLengthMismatch { got, expected } => write!(
                f,
                "coefficient vector has length {got}, basis has {expected} functions"
            ),
            PceError::DimensionMismatch { got, expected } => write!(
                f,
                "sample point has {got} coordinates, basis has {expected} variables"
            ),
            PceError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name} = {value}")
            }
            PceError::BasisMismatch => write!(f, "operands use different bases"),
        }
    }
}

impl Error for PceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PceError::CoefficientLengthMismatch {
            got: 3,
            expected: 6,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('6'));
        let e = PceError::InvalidParameter {
            name: "points",
            value: "0".to_string(),
        };
        assert!(e.to_string().contains("points"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PceError>();
    }
}
