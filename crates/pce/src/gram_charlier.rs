//! Gram–Charlier (type A) probability density reconstruction.
//!
//! The paper notes that once higher-order moments of the voltage response are
//! available from the expansion, "expansions like Gram-Charlier series or
//! Edgeworth series could be used to obtain the probability density function
//! of x(t, ξ) directly". This module implements the classical type-A
//! Gram–Charlier series truncated after the fourth cumulant.

use crate::moments::Moments;
use crate::PolynomialFamily;

/// A Gram–Charlier type-A density approximation built from the first four
/// moments of a random variable.
///
/// The density is
///
/// ```text
/// f(x) ≈ φ(z)/σ · [ 1 + γ₁/6 · He₃(z) + γ₂/24 · He₄(z) ],   z = (x − μ)/σ
/// ```
///
/// where `γ₁` is the skewness and `γ₂` the excess kurtosis. For nearly
/// Gaussian responses (the common case for power-grid voltage drops under
/// moderate process variations) the correction terms are small and the
/// expansion is an accurate, cheap alternative to histogramming Monte Carlo
/// samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GramCharlierPdf {
    mean: f64,
    std_dev: f64,
    skewness: f64,
    excess_kurtosis: f64,
}

impl GramCharlierPdf {
    /// Builds the approximation from moments.
    ///
    /// # Panics
    ///
    /// Panics if the variance is not strictly positive.
    pub fn from_moments(moments: &Moments) -> Self {
        assert!(
            moments.variance > 0.0,
            "Gram-Charlier expansion requires positive variance"
        );
        GramCharlierPdf {
            mean: moments.mean,
            std_dev: moments.variance.sqrt(),
            skewness: moments.skewness,
            excess_kurtosis: moments.excess_kurtosis,
        }
    }

    /// Evaluates the approximate density at `x`.
    pub fn density(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std_dev;
        let phi = (-0.5 * z * z).exp() / (self.std_dev * (2.0 * std::f64::consts::PI).sqrt());
        let he3 = PolynomialFamily::Hermite.evaluate(3, z);
        let he4 = PolynomialFamily::Hermite.evaluate(4, z);
        let correction = 1.0 + self.skewness / 6.0 * he3 + self.excess_kurtosis / 24.0 * he4;
        (phi * correction).max(0.0)
    }

    /// Approximates the cumulative distribution by trapezoidal integration of
    /// the density over `[lo, x]` with `steps` panels.
    pub fn cdf(&self, lo: f64, x: f64, steps: usize) -> f64 {
        if x <= lo || steps == 0 {
            return 0.0;
        }
        let h = (x - lo) / steps as f64;
        let mut acc = 0.5 * (self.density(lo) + self.density(x));
        for i in 1..steps {
            acc += self.density(lo + h * i as f64);
        }
        acc * h
    }

    /// Mean of the underlying moments.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation of the underlying moments.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_moments(mean: f64, variance: f64) -> Moments {
        Moments {
            mean,
            variance,
            skewness: 0.0,
            excess_kurtosis: 0.0,
        }
    }

    #[test]
    fn reduces_to_gaussian_density_for_zero_higher_cumulants() {
        let pdf = GramCharlierPdf::from_moments(&gaussian_moments(1.0, 4.0));
        let x = 2.0;
        let z: f64 = (x - 1.0) / 2.0;
        let expected = (-0.5 * z * z).exp() / (2.0 * (2.0 * std::f64::consts::PI).sqrt());
        assert!((pdf.density(x) - expected).abs() < 1e-14);
    }

    #[test]
    fn density_integrates_to_about_one() {
        let pdf = GramCharlierPdf::from_moments(&Moments {
            mean: 0.5,
            variance: 0.04,
            skewness: 0.3,
            excess_kurtosis: 0.2,
        });
        let total = pdf.cdf(0.5 - 2.0, 0.5 + 2.0, 4000);
        assert!((total - 1.0).abs() < 1e-3, "integral = {total}");
    }

    #[test]
    fn skewness_shifts_mass() {
        let sym = GramCharlierPdf::from_moments(&gaussian_moments(0.0, 1.0));
        let skewed = GramCharlierPdf::from_moments(&Moments {
            mean: 0.0,
            variance: 1.0,
            skewness: 0.5,
            excess_kurtosis: 0.0,
        });
        // Positive skewness raises the density in the right tail relative to
        // the symmetric case.
        assert!(skewed.density(2.0) > sym.density(2.0));
        assert!(skewed.density(-2.0) < sym.density(-2.0));
    }

    #[test]
    fn density_is_clamped_to_be_nonnegative() {
        // Large negative excess kurtosis can push the raw series negative in
        // the tails; the implementation clamps at zero.
        let pdf = GramCharlierPdf::from_moments(&Moments {
            mean: 0.0,
            variance: 1.0,
            skewness: 0.0,
            excess_kurtosis: -2.5,
        });
        assert!(pdf.density(3.5) >= 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_variance_is_rejected() {
        let _ = GramCharlierPdf::from_moments(&gaussian_moments(0.0, 0.0));
    }
}
