//! Integration tests for the stochastic-collocation subsystem, covering the
//! three contract points:
//!
//! (a) collocation mean/variance agree with the Galerkin solve on the
//!     (scaled) paper grid, and converge toward the Monte Carlo reference as
//!     the Smolyak level rises;
//! (b) exactly one symbolic analysis/ordering is performed across all
//!     collocation nodes (engine counter hooks, mirroring
//!     `integration_engine_reuse.rs`);
//! (c) the projected statistics are bit-identical for 1, 2 and 8 worker
//!     threads.

use opera::analysis::ExperimentConfig;
use opera::engine::{CollocationConfig, OperaEngine};
use opera::{McConfig, Parallelism};

/// The scaled first paper grid shared by the tests below.
fn paper_engine(parallelism: Parallelism) -> OperaEngine {
    let mut config = ExperimentConfig::table1_row_scaled(0, 0.012, 50).unwrap();
    config.time_step = 0.1e-9;
    config.end_time = Some(1.0e-9);
    config.parallelism = parallelism;
    OperaEngine::from_config(&config).unwrap()
}

#[test]
fn collocation_matches_galerkin_and_converges_toward_monte_carlo() {
    let engine = paper_engine(Parallelism::Max);
    let vdd = engine.grid().vdd();
    let galerkin = engine.solve().unwrap();
    let (node, k, drop) = galerkin.worst_mean_drop(vdd);
    assert!(drop > 0.0);

    // --- (a1) agreement with the Galerkin solution at the matched level.
    let colloc = engine.collocation(&CollocationConfig::smolyak(2)).unwrap();
    let mean_diff = (colloc.solution.mean_at(k, node) - galerkin.mean_at(k, node)).abs();
    assert!(
        mean_diff < 1e-4 * vdd,
        "collocation and Galerkin means differ by {mean_diff}"
    );
    let sigma_g = galerkin.std_dev_at(k, node);
    let sigma_c = colloc.solution.std_dev_at(k, node);
    assert!(sigma_g > 0.0);
    assert!(
        (sigma_c - sigma_g).abs() < 0.05 * sigma_g,
        "collocation σ {sigma_c} vs Galerkin σ {sigma_g}"
    );

    // --- (a2) convergence toward Monte Carlo as the Smolyak level rises.
    // The per-level variance error against a converged reference must not
    // grow, and the highest level must sit within Monte Carlo sampling noise.
    let mc = engine.monte_carlo(&McConfig::new(400, 11)).unwrap();
    let sigma_mc = mc.std_dev_at(k, node);
    assert!(sigma_mc > 0.0);
    let sigma_err = |level: u32| {
        let report = engine
            .collocation(&CollocationConfig::smolyak(level))
            .unwrap();
        (report.solution.std_dev_at(k, node) - sigma_mc).abs() / sigma_mc
    };
    let (err1, err2, err3) = (sigma_err(1), sigma_err(2), sigma_err(3));
    assert!(
        err3 <= err1 + 1e-9,
        "σ error must not grow with the level: {err1} -> {err2} -> {err3}"
    );
    assert!(
        err3 < 0.15,
        "level-3 collocation σ should sit within MC noise, got {err3}"
    );
}

#[test]
fn exactly_one_symbolic_analysis_serves_all_collocation_nodes() {
    let engine = paper_engine(Parallelism::Max);
    assert_eq!(engine.collocation_symbolic_count(), 0);
    assert_eq!(engine.collocation_factorization_count(), 0);

    let report = engine.collocation(&CollocationConfig::smolyak(2)).unwrap();
    assert!(report.nodes > 1, "a level-2 sweep has many nodes");
    // One ordering + elimination-tree analysis for the whole sweep …
    assert_eq!(report.symbolic_analyses, 1);
    assert_eq!(engine.collocation_symbolic_count(), 1);
    // … and two numeric-only factorisations per node (DC + companion).
    assert_eq!(report.numeric_factorizations, 2 * report.nodes);
    assert_eq!(engine.collocation_factorization_count(), 2 * report.nodes);
    // The Galerkin-side counters are untouched: no re-assembly either.
    assert_eq!(engine.assembly_count(), 1);
    assert_eq!(engine.factorization_count(), 1);

    // A second sweep performs its own single analysis.
    engine.collocation(&CollocationConfig::smolyak(1)).unwrap();
    assert_eq!(engine.collocation_symbolic_count(), 2);
}

#[test]
fn collocation_statistics_are_bit_identical_for_1_2_and_8_threads() {
    let runs: Vec<_> = [
        Parallelism::Serial,
        Parallelism::Threads(2),
        Parallelism::Threads(8),
    ]
    .into_iter()
    .map(|parallelism| {
        let engine = paper_engine(parallelism);
        engine
            .collocation(&CollocationConfig::smolyak(2))
            .unwrap()
            .solution
    })
    .collect();

    let reference = &runs[0];
    for (which, other) in runs.iter().enumerate().skip(1) {
        assert_eq!(reference.times(), other.times());
        assert_eq!(reference.node_count(), other.node_count());
        for k in 0..reference.times().len() {
            for n in 0..reference.node_count() {
                // Bit-identical, not approximately equal.
                assert_eq!(
                    reference.mean_at(k, n).to_bits(),
                    other.mean_at(k, n).to_bits(),
                    "mean differs at ({k}, {n}) for thread-variant {which}"
                );
                assert_eq!(
                    reference.variance_at(k, n).to_bits(),
                    other.variance_at(k, n).to_bits(),
                    "variance differs at ({k}, {n}) for thread-variant {which}"
                );
            }
        }
    }
}
