//! Integration tests for the `opera_trace` observability layer: span
//! nesting across the rayon fan-outs, counter totals agreeing with the
//! engine's legacy test hooks, and the zero-overhead contract (tracing
//! enabled must not perturb a single bit of the results; tracing disabled
//! must keep the steady-state transient loop allocation-free).
//!
//! Trace state is process-global, so every test here holds
//! [`opera_trace::test_guard`] for its whole body and resets the sink
//! before enabling.

use opera::analysis::ExperimentConfig;
use opera::engine::{McConfig, OperaEngine, Scenario};
use opera::stochastic::{solve, OperaOptions};
use opera::transient::TransientOptions;
use opera_grid::GridSpec;
use opera_variation::{StochasticGridModel, VariationSpec};

fn small_model() -> StochasticGridModel {
    let grid = GridSpec::small_test(120).with_seed(9).build().unwrap();
    StochasticGridModel::inter_die(&grid, &VariationSpec::paper_defaults()).unwrap()
}

#[test]
fn rayon_fanout_spans_attach_to_the_launching_span() {
    let _guard = opera_trace::test_guard();
    opera_trace::reset();
    opera_trace::enable();

    let engine = OperaEngine::from_config(&ExperimentConfig::quick_demo(100)).unwrap();
    // Discard the build-time spans so the drain below holds exactly the
    // Monte Carlo sweep.
    let _ = opera_trace::drain();
    let samples = 16;
    let _mc = engine.monte_carlo(&McConfig::new(samples, 3)).unwrap();
    let snapshot = opera_trace::drain();
    opera_trace::disable();

    let runs: Vec<_> = snapshot
        .spans
        .iter()
        .filter(|s| s.name == "mc.run")
        .collect();
    assert_eq!(runs.len(), 1, "expected exactly one mc.run span");
    let run_id = runs[0].id;

    // Every per-group worker span must name the launching sweep as its
    // parent, no matter which pool thread executed it.
    let groups: Vec<_> = snapshot
        .spans
        .iter()
        .filter(|s| s.name == "mc.sample_group")
        .collect();
    assert!(!groups.is_empty(), "expected mc.sample_group worker spans");
    for group in &groups {
        assert_eq!(
            group.parent, run_id,
            "worker span on tid {} is not attached to the mc.run span",
            group.tid
        );
    }
    assert_eq!(snapshot.counter("mc.samples"), samples as u64);
}

#[test]
fn engine_counters_agree_with_the_legacy_test_hooks() {
    let _guard = opera_trace::test_guard();
    opera_trace::reset();
    opera_trace::enable();

    let engine = OperaEngine::from_config(&ExperimentConfig::quick_demo(120)).unwrap();
    // Same batch as `integration_engine_reuse.rs`: the time-step override
    // forces exactly one extra factorisation, nothing re-assembles.
    let scenarios = [
        Scenario::named("baseline"),
        Scenario::named("fine").with_time_step(0.1e-9),
        Scenario::named("short").with_end_time(0.6e-9),
    ];
    let reports = engine.run_batch(&scenarios).unwrap();
    assert_eq!(reports.len(), 3);
    let snapshot = opera_trace::drain();
    opera_trace::disable();

    // The legacy hooks are now shims over the same counters the sink
    // drained, so the two views must agree exactly.
    assert_eq!(
        engine.assembly_count() as u64,
        snapshot.counter("engine.assemblies")
    );
    assert_eq!(
        engine.factorization_count() as u64,
        snapshot.counter("engine.factorizations")
    );
    assert_eq!(snapshot.counter("engine.assemblies"), 1);
    assert_eq!(snapshot.counter("engine.factorizations"), 2);

    // The batch fan-out ran under per-scenario worker spans.
    assert_eq!(snapshot.span_count("batch.scenario"), scenarios.len());
}

#[test]
fn enabled_tracing_is_bit_invisible_to_the_solver() {
    let _guard = opera_trace::test_guard();
    let model = small_model();
    let options = OperaOptions::order2(TransientOptions::new(0.1e-9, 1.0e-9));

    opera_trace::reset();
    opera_trace::disable();
    let untraced = solve(&model, &options).unwrap();

    opera_trace::enable();
    let traced = solve(&model, &options).unwrap();
    let snapshot = opera_trace::drain();
    opera_trace::disable();

    // The traced run really was recorded...
    assert!(snapshot.span_count("transient.stepping") >= 1);
    assert!(snapshot.span_count("galerkin.assemble") >= 1);
    assert!(snapshot.counter("transient.steps") > 0);

    // ...and produced bit-identical coefficients everywhere.
    assert_eq!(untraced.times(), traced.times());
    assert_eq!(untraced.basis_size(), traced.basis_size());
    for k in 0..untraced.times().len() {
        for i in 0..untraced.basis_size() {
            for n in 0..untraced.node_count() {
                assert_eq!(
                    untraced.coefficient(k, i, n).to_bits(),
                    traced.coefficient(k, i, n).to_bits(),
                    "coefficient ({k}, {i}, {n}) differs under tracing"
                );
            }
        }
    }
}

#[test]
fn disabled_tracing_keeps_the_steady_state_loop_allocation_free() {
    let _guard = opera_trace::test_guard();
    opera_trace::reset();
    opera_trace::disable();
    let engine = OperaEngine::from_config(&ExperimentConfig::quick_demo(100)).unwrap();
    assert_eq!(engine.steady_state_step_allocations().unwrap(), 0);
}

#[test]
fn build_span_nests_its_phases_and_child_times_fit_inside_the_parent() {
    let _guard = opera_trace::test_guard();
    opera_trace::reset();
    opera_trace::enable();
    let engine = OperaEngine::from_config(&ExperimentConfig::quick_demo(110)).unwrap();
    let snapshot = opera_trace::drain();
    opera_trace::disable();
    drop(engine);

    let builds: Vec<_> = snapshot
        .spans
        .iter()
        .filter(|s| s.name == "engine.build")
        .collect();
    assert_eq!(builds.len(), 1);
    let build = builds[0];

    // The build must decompose into the documented pipeline phases.
    let children = snapshot.children_of(build.id);
    let names: Vec<&str> = children.iter().map(|c| c.name).collect();
    assert!(names.contains(&"galerkin.assemble"), "children: {names:?}");
    assert!(names.contains(&"solver.prepare"), "children: {names:?}");

    // Sequential children of one span can never out-run their parent: the
    // reconciliation property `perf_report` relies on when it reports the
    // drained span totals as the BENCH phase timings.
    let child_sum: u64 = children.iter().map(|c| c.dur_ns).sum();
    assert!(
        child_sum <= build.dur_ns,
        "children sum to {child_sum} ns, parent engine.build lasted {} ns",
        build.dur_ns
    );
    for child in &children {
        assert!(child.start_ns >= build.start_ns);
        assert!(child.start_ns + child.dur_ns <= build.start_ns + build.dur_ns);
    }

    // The factorisation layer reported its structure gauges.
    assert!(snapshot.counter("cholesky.symbolic_analyses") >= 1);
    assert!(snapshot.gauge("cholesky.nnz_l").unwrap_or(0.0) > 0.0);
    let padded = snapshot.gauge("cholesky.padded_nnz_fraction").unwrap();
    assert!((0.0..1.0).contains(&padded), "padded fraction {padded}");
}
