//! Golden-waveform validation of the transient integrators, in the style of
//! a SPICE-vs-analytic regression suite: every circuit here has a closed-form
//! solution, and every integration scheme must stay inside a pinned error
//! budget against it.
//!
//! Three analytic circuits cover the interesting regimes:
//!
//! * a **smooth RC charging** curve (first-order accuracy separation:
//!   backward Euler's O(h) error sits two decades above the trapezoidal and
//!   TR-BDF2 O(h²) errors),
//! * a **stiff RC pair** with a 250× eigenvalue spread (L-stability: the
//!   fast mode must be damped, not rung), and
//! * a **PULSE edge** (piecewise-linear excitation with sharp corners,
//!   where the error concentrates in the edges).
//!
//! On the stiff and edge circuits the adaptive TR-BDF2 controller must meet
//! the *fixed-step trapezoidal* budget with at least 3× fewer accepted
//! steps, while running exactly one symbolic analysis — the paper-level
//! claim this PR's tentpole makes. The same claims are then re-checked
//! end-to-end through `OperaEngine` on the two golden fixture decks
//! (`tests/fixtures/golden/*.sp`), asserted via `opera_trace` counters.

use opera::adaptive::{solve_transient_adaptive, AdaptiveOptions};
use opera::engine::{OperaEngine, Scenario};
use opera::transient::{solve_transient, IntegrationMethod, TransientOptions, TransientSolution};
use opera_sparse::{CsrMatrix, TripletMatrix};

fn fixture(name: &str) -> String {
    format!(
        "{}/tests/fixtures/golden/{name}",
        env!("CARGO_MANIFEST_DIR")
    )
}

/// Max |v − reference| over the output grid, all nodes.
fn max_error(solution: &TransientSolution, reference: impl Fn(f64) -> Vec<f64>) -> f64 {
    let mut worst = 0.0f64;
    for (k, &t) in solution.times.iter().enumerate() {
        for (node, &v) in solution.state_at(k).iter().enumerate() {
            worst = worst.max((v - reference(t)[node]).abs());
        }
    }
    worst
}

fn diag_circuit(g_values: &[f64], c_values: &[f64]) -> (CsrMatrix, CsrMatrix) {
    let n = g_values.len();
    let mut g = TripletMatrix::new(n, n);
    let mut c = TripletMatrix::new(n, n);
    for i in 0..n {
        g.push(i, i, g_values[i]);
        c.push(i, i, c_values[i]);
    }
    (g.to_csr(), c.to_csr())
}

// ---------------------------------------------------------------------------
// Circuit 1: smooth RC charging. G = C = 1, u(t) = 1 − e^{−3t}, so
// v' + v = 1 − e^{−3t} with v(0) = 0 has the exact solution
// v(t) = 1 + ½e^{−3t} − 3/2·e^{−t}.
// ---------------------------------------------------------------------------

fn smooth_excitation(t: f64) -> Vec<f64> {
    vec![1.0 - (-3.0 * t).exp()]
}

fn smooth_reference(t: f64) -> Vec<f64> {
    vec![1.0 + 0.5 * (-3.0 * t).exp() - 1.5 * (-t).exp()]
}

#[test]
fn smooth_rc_charging_meets_per_method_error_budgets() {
    let (g, c) = diag_circuit(&[1.0], &[1.0]);
    // (method, max-error budget over the grid). h = 0.05 on τ = 1 separates
    // the O(h) scheme from the O(h²) schemes by two decades.
    let cases = [
        (IntegrationMethod::BackwardEuler, 2e-2),
        (IntegrationMethod::Trapezoidal, 1e-3),
        (IntegrationMethod::TrBdf2, 5e-4),
    ];
    for (method, budget) in cases {
        let options = TransientOptions {
            time_step: 0.05,
            end_time: 2.0,
            method,
        };
        let sol = solve_transient(&g, &c, smooth_excitation, &options).unwrap();
        let err = max_error(&sol, smooth_reference);
        assert!(
            err < budget,
            "{method:?}: max error {err:.3e} exceeds budget {budget:.1e}"
        );
    }

    // Adaptive TR-BDF2 on the same output grid: same budget as fixed-step
    // trapezoidal, one symbolic analysis.
    let options = TransientOptions {
        time_step: 0.05,
        end_time: 2.0,
        method: IntegrationMethod::TrBdf2,
    };
    let adaptive = solve_transient_adaptive(
        &g,
        &c,
        smooth_excitation,
        &options,
        &AdaptiveOptions::with_rel_tol(1e-5),
    )
    .unwrap();
    let err = max_error(&adaptive.solution, smooth_reference);
    assert!(err < 1e-3, "adaptive max error {err:.3e}");
    assert_eq!(adaptive.stats.symbolic_analyses, 1);
}

// ---------------------------------------------------------------------------
// Circuit 2: stiff RC pair. C = I and a symmetric coupled conductance
//     G = [[2, −1], [−1, 500]]
// whose eigenvalues λ₁ ≈ 2.0, λ₂ ≈ 500.002 are 250× apart. The drive
// u(t) = u∞·(1 − e^{−σt}) is smooth, so the exact solution decomposes on
// the eigenbasis: with w = Qᵀu∞,
//     y_k(t) = w_k/λ_k + w_k/(σ−λ_k)·e^{−σt} + B_k·e^{−λ_k t},
//     B_k = −w_k/λ_k − w_k/(σ−λ_k),      v(t) = Q·y(t).
// ---------------------------------------------------------------------------

const STIFF_A: f64 = 2.0;
const STIFF_B: f64 = -1.0;
const STIFF_D: f64 = 500.0;
const STIFF_SIGMA: f64 = 4.0;
const STIFF_U_INF: [f64; 2] = [1.0, 0.5];
/// One budget shared by fixed-step trapezoidal, fixed-step TR-BDF2 *and*
/// adaptive TR-BDF2 on the stiff pair — the "same error budget" of the
/// acceptance criterion.
const STIFF_SECOND_ORDER_BUDGET: f64 = 1e-4;

fn stiff_circuit() -> (CsrMatrix, CsrMatrix) {
    let mut g = TripletMatrix::new(2, 2);
    g.push(0, 0, STIFF_A);
    g.push(1, 1, STIFF_D);
    g.push(0, 1, STIFF_B);
    g.push(1, 0, STIFF_B);
    let mut c = TripletMatrix::new(2, 2);
    c.push(0, 0, 1.0);
    c.push(1, 1, 1.0);
    (g.to_csr(), c.to_csr())
}

fn stiff_excitation(t: f64) -> Vec<f64> {
    let ramp = 1.0 - (-STIFF_SIGMA * t).exp();
    vec![STIFF_U_INF[0] * ramp, STIFF_U_INF[1] * ramp]
}

/// Eigenpairs of the symmetric 2×2 G: ((λ₁, q₁), (λ₂, q₂)), orthonormal.
fn stiff_eigen() -> [(f64, [f64; 2]); 2] {
    let mid = 0.5 * (STIFF_A + STIFF_D);
    let half_gap = (0.25 * (STIFF_A - STIFF_D) * (STIFF_A - STIFF_D) + STIFF_B * STIFF_B).sqrt();
    let mut pairs = [[0.0; 3]; 2];
    for (slot, lambda) in [(0, mid - half_gap), (1, mid + half_gap)] {
        let (mut qx, mut qy) = (STIFF_B, lambda - STIFF_A);
        let norm = (qx * qx + qy * qy).sqrt();
        qx /= norm;
        qy /= norm;
        pairs[slot] = [lambda, qx, qy];
    }
    [
        (pairs[0][0], [pairs[0][1], pairs[0][2]]),
        (pairs[1][0], [pairs[1][1], pairs[1][2]]),
    ]
}

fn stiff_reference(t: f64) -> Vec<f64> {
    let mut v = [0.0f64; 2];
    for (lambda, q) in stiff_eigen() {
        let w = q[0] * STIFF_U_INF[0] + q[1] * STIFF_U_INF[1];
        let forced = w / lambda;
        let driven = w / (STIFF_SIGMA - lambda);
        let b = -forced - driven;
        let y = forced + driven * (-STIFF_SIGMA * t).exp() + b * (-lambda * t).exp();
        v[0] += q[0] * y;
        v[1] += q[1] * y;
    }
    v.to_vec()
}

#[test]
fn stiff_rc_pair_meets_per_method_error_budgets() {
    let (g, c) = stiff_circuit();
    let cases = [
        (IntegrationMethod::BackwardEuler, 2e-3),
        (IntegrationMethod::Trapezoidal, STIFF_SECOND_ORDER_BUDGET),
        (IntegrationMethod::TrBdf2, STIFF_SECOND_ORDER_BUDGET),
    ];
    for (method, budget) in cases {
        let options = TransientOptions {
            time_step: 0.005,
            end_time: 2.0,
            method,
        };
        let sol = solve_transient(&g, &c, stiff_excitation, &options).unwrap();
        let err = max_error(&sol, stiff_reference);
        assert!(
            err < budget,
            "{method:?}: max error {err:.3e} exceeds budget {budget:.1e}"
        );
    }
}

#[test]
fn adaptive_tr_bdf2_beats_fixed_trapezoidal_step_count_on_the_stiff_pair() {
    let (g, c) = stiff_circuit();
    let options = TransientOptions {
        time_step: 0.005,
        end_time: 2.0,
        method: IntegrationMethod::TrBdf2,
    };
    let fixed_steps = (options.time_points().len() - 1) as u64;

    let mut tolerances = AdaptiveOptions::with_rel_tol(1e-5);
    tolerances.abs_tol = 1e-8;
    let adaptive =
        solve_transient_adaptive(&g, &c, stiff_excitation, &options, &tolerances).unwrap();
    let err = max_error(&adaptive.solution, stiff_reference);
    // The acceptance bar: meet the fixed-step trapezoidal budget with at
    // least 3× fewer steps, on one symbolic analysis.
    assert!(
        err < STIFF_SECOND_ORDER_BUDGET,
        "adaptive max error {err:.3e} exceeds the shared budget"
    );
    assert!(
        3 * adaptive.stats.steps_accepted <= fixed_steps,
        "adaptive took {} steps, fixed-step took {fixed_steps} — need ≥3× fewer",
        adaptive.stats.steps_accepted
    );
    assert_eq!(adaptive.stats.symbolic_analyses, 1);
    assert_eq!(
        adaptive.stats.steps_accepted + adaptive.stats.steps_rejected,
        adaptive.stats.steps_attempted
    );
}

// ---------------------------------------------------------------------------
// Circuit 3: PULSE edge. One RC node (g = 1, c = 0.02, τ = 20 ms on the
// test's unit time scale) driven by a trapezoid current pulse with sharp
// 50 ms edges. On each linear segment i(τ) = α + βτ the exact response is
//     v(τ) = v_p(τ) + (v_start − v_p(0))·e^{−(g/c)τ},
//     v_p(τ) = (α + βτ)/g − βc/g²,
// chained across the breakpoints.
// ---------------------------------------------------------------------------

const PULSE_G: f64 = 1.0;
const PULSE_C: f64 = 0.02;
/// Fixed grid fine enough for the second-order schemes to resolve the
/// τ = 20 ms corner transients everywhere (the cost the adaptive run avoids).
const PULSE_FIXED_STEP: f64 = 0.005;
/// The budget shared by fixed-step trapezoidal, fixed-step TR-BDF2 and
/// adaptive TR-BDF2 on the pulse edge.
const PULSE_SECOND_ORDER_BUDGET: f64 = 3e-3;
/// Trapezoid breakpoints (t, i): flat 0, sharp rise, plateau, sharp fall.
const PULSE_POINTS: [(f64, f64); 6] = [
    (0.0, 0.0),
    (0.10, 0.0),
    (0.15, 1.0),
    (0.50, 1.0),
    (0.55, 0.0),
    (1.0, 0.0),
];

fn pulse_current(t: f64) -> f64 {
    let points = &PULSE_POINTS;
    if t <= points[0].0 {
        return points[0].1;
    }
    for pair in points.windows(2) {
        let ((t0, i0), (t1, i1)) = (pair[0], pair[1]);
        if t <= t1 {
            return i0 + (i1 - i0) * (t - t0) / (t1 - t0);
        }
    }
    points[points.len() - 1].1
}

fn pulse_excitation(t: f64) -> Vec<f64> {
    vec![pulse_current(t)]
}

/// Exact piecewise response, chained segment by segment up to `t`.
fn pulse_reference(t: f64) -> Vec<f64> {
    let lambda = PULSE_G / PULSE_C;
    let mut v = 0.0f64; // v(0) = i(0)/g = 0
    let mut segment_end = v;
    for pair in PULSE_POINTS.windows(2) {
        let ((t0, i0), (t1, i1)) = (pair[0], pair[1]);
        let beta = (i1 - i0) / (t1 - t0);
        let particular =
            |tau: f64| (i0 + beta * tau) / PULSE_G - beta * PULSE_C / (PULSE_G * PULSE_G);
        let tau_end = if t < t1 { t - t0 } else { t1 - t0 };
        segment_end = particular(tau_end) + (v - particular(0.0)) * (-lambda * tau_end).exp();
        if t < t1 {
            return vec![segment_end];
        }
        v = segment_end;
    }
    vec![segment_end]
}

#[test]
fn pulse_edge_meets_per_method_error_budgets() {
    let (g, c) = diag_circuit(&[PULSE_G], &[PULSE_C]);
    let cases = [
        (IntegrationMethod::BackwardEuler, 3e-2),
        (IntegrationMethod::Trapezoidal, PULSE_SECOND_ORDER_BUDGET),
        (IntegrationMethod::TrBdf2, PULSE_SECOND_ORDER_BUDGET),
    ];
    for (method, budget) in cases {
        let options = TransientOptions {
            time_step: PULSE_FIXED_STEP,
            end_time: 1.0,
            method,
        };
        let sol = solve_transient(&g, &c, pulse_excitation, &options).unwrap();
        let err = max_error(&sol, pulse_reference);
        assert!(
            err < budget,
            "{method:?}: max error {err:.3e} exceeds budget {budget:.1e}"
        );
    }
}

#[test]
fn adaptive_tr_bdf2_beats_fixed_trapezoidal_step_count_on_the_pulse_edge() {
    let (g, c) = diag_circuit(&[PULSE_G], &[PULSE_C]);
    let options = TransientOptions {
        time_step: PULSE_FIXED_STEP,
        end_time: 1.0,
        method: IntegrationMethod::TrBdf2,
    };
    let fixed_steps = (options.time_points().len() - 1) as u64;
    let mut tolerances = AdaptiveOptions::with_rel_tol(1e-3);
    tolerances.abs_tol = 1e-4;
    let adaptive =
        solve_transient_adaptive(&g, &c, pulse_excitation, &options, &tolerances).unwrap();
    let err = max_error(&adaptive.solution, pulse_reference);
    assert!(
        err < PULSE_SECOND_ORDER_BUDGET,
        "adaptive max error {err:.3e} exceeds the shared budget"
    );
    assert!(
        3 * adaptive.stats.steps_accepted <= fixed_steps,
        "adaptive took {} steps, fixed-step took {fixed_steps} — need ≥3× fewer",
        adaptive.stats.steps_accepted
    );
    assert_eq!(adaptive.stats.symbolic_analyses, 1);
}

// ---------------------------------------------------------------------------
// Engine-level goldens: the fixture decks drive the full stochastic engine,
// and the trace counters prove the "one symbolic analysis per engine" claim
// end to end.
// ---------------------------------------------------------------------------

#[test]
fn golden_decks_adopt_tr_bdf2_and_run_one_symbolic_analysis_per_engine() {
    let _guard = opera_trace::test_guard();
    for deck in ["stiff_rc.sp", "pulse_edge.sp"] {
        opera_trace::reset();
        opera_trace::enable();

        let engine = OperaEngine::for_netlist(fixture(deck))
            .unwrap()
            .order(2)
            .adaptive(AdaptiveOptions::with_rel_tol(1e-4))
            .build()
            .unwrap();
        // The deck's `.tran … method=trbdf2` became the engine default.
        assert_eq!(engine.transient().method, IntegrationMethod::TrBdf2);

        let (solution, stats) = engine
            .solve_scenario_adaptive(&Scenario::default(), engine.adaptive_options().unwrap())
            .unwrap();
        assert_eq!(
            solution.times().len(),
            engine.transient().time_points().len()
        );
        assert!(stats.steps_accepted > 0);

        let snapshot = opera_trace::drain();
        opera_trace::disable();

        // Exactly one symbolic analysis for the whole engine lifetime —
        // build-time factorisation and every adaptive step-size change
        // reused it, re-running only the numeric factorisation.
        assert_eq!(
            snapshot.counter("transient.symbolic_analyses"),
            1,
            "deck {deck}: engine must run exactly one symbolic analysis"
        );
        assert_eq!(stats.symbolic_analyses, 1, "deck {deck}");
        let refactorizations = snapshot.counter("transient.refactorizations");
        assert!(
            refactorizations >= 1,
            "deck {deck}: step-size changes must show up as numeric refactorisations"
        );
        assert_eq!(
            snapshot.counter("transient.adaptive.steps_attempted"),
            stats.steps_attempted,
            "deck {deck}"
        );
        assert_eq!(
            snapshot.counter("transient.adaptive.steps_rejected"),
            stats.steps_rejected,
            "deck {deck}"
        );
        assert!(
            snapshot.span_count("transient.adaptive") >= 1,
            "deck {deck}"
        );
    }
}

#[test]
fn adaptive_engine_matches_fixed_step_means_on_the_golden_decks() {
    for deck in ["stiff_rc.sp", "pulse_edge.sp"] {
        let fixed = OperaEngine::for_netlist(fixture(deck))
            .unwrap()
            .order(2)
            .build()
            .unwrap();
        let adaptive_engine = OperaEngine::for_netlist(fixture(deck))
            .unwrap()
            .order(2)
            .adaptive(AdaptiveOptions::with_rel_tol(1e-6))
            .build()
            .unwrap();

        let reference = fixed.solve().unwrap();
        let (solution, stats) = adaptive_engine
            .solve_scenario_adaptive(
                &Scenario::default(),
                adaptive_engine.adaptive_options().unwrap(),
            )
            .unwrap();

        assert_eq!(solution.times(), reference.times());
        let vdd = 1.0;
        let mut worst = 0.0f64;
        for k in 0..reference.times().len() {
            for node in 0..reference.node_count() {
                worst = worst.max((solution.mean_at(k, node) - reference.mean_at(k, node)).abs());
            }
        }
        // Means agree to a small fraction of the worst IR drop.
        let (_, _, drop) = reference.worst_mean_drop(vdd);
        assert!(
            worst < 2e-2 * drop.max(1e-6),
            "deck {deck}: adaptive vs fixed mean mismatch {worst:.3e} (worst drop {drop:.3e})"
        );
        assert_eq!(stats.symbolic_analyses, 1, "deck {deck}");
    }
}
