//! Workspace smoke test: the end-to-end experiment driver runs on a tiny
//! configuration, and the parallel Monte Carlo path is statistics-identical
//! to the serial path for a fixed seed (with a wall-clock sanity check on
//! multi-core machines).

use std::time::Instant;

use opera::analysis::{run_experiment, ExperimentConfig};
use opera::monte_carlo::{run as run_monte_carlo, run_leakage, MonteCarloOptions};
use opera::special_case::{solve_leakage, SpecialCaseOptions};
use opera::transient::TransientOptions;
use opera::Parallelism;
use opera_grid::GridSpec;
use opera_variation::{LeakageModel, StochasticGridModel, VariationSpec};

#[test]
fn quick_demo_experiment_runs_end_to_end() {
    let report = run_experiment(&ExperimentConfig::quick_demo(150)).unwrap();
    assert!(report.node_count >= 100);
    assert!(report.opera.max_three_sigma_percent_of_nominal > 0.0);
    assert!(report.errors.avg_mean_error_percent < 1.0);
    assert!(report.monte_carlo_seconds > 0.0);
    assert_eq!(report.mc_samples, 40);
    assert_eq!(
        report.distribution.opera.edges(),
        report.distribution.monte_carlo.edges()
    );
}

#[test]
fn parallel_monte_carlo_is_bit_identical_to_serial() {
    let grid = GridSpec::small_test(120).with_seed(33).build().unwrap();
    let model = StochasticGridModel::inter_die(&grid, &VariationSpec::paper_defaults()).unwrap();
    let mut options = MonteCarloOptions::new(24, 9, TransientOptions::new(0.25e-9, 1.0e-9));
    options.probe_nodes = vec![0, 5];

    let serial = Parallelism::Serial
        .install(|| run_monte_carlo(&model, &options))
        .unwrap()
        .unwrap();
    let parallel = Parallelism::Threads(4)
        .install(|| run_monte_carlo(&model, &options))
        .unwrap()
        .unwrap();

    assert_eq!(serial.mean, parallel.mean);
    assert_eq!(serial.variance, parallel.variance);
    assert_eq!(serial.probe_traces, parallel.probe_traces);
    assert_eq!(serial.samples, parallel.samples);
}

#[test]
fn parallel_leakage_monte_carlo_and_special_case_are_deterministic() {
    let grid = GridSpec::small_test(90).with_seed(17).build().unwrap();
    let leakage = LeakageModel::uniform_slices(grid.node_count(), 2, 3.0e-5, 0.04, 23.0).unwrap();
    let topts = TransientOptions::new(0.25e-9, 1.0e-9);

    let options = MonteCarloOptions::new(16, 5, topts);
    let serial = Parallelism::Serial
        .install(|| run_leakage(&grid, &leakage, &options))
        .unwrap()
        .unwrap();
    let parallel = Parallelism::Threads(3)
        .install(|| run_leakage(&grid, &leakage, &options))
        .unwrap()
        .unwrap();
    assert_eq!(serial.mean, parallel.mean);
    assert_eq!(serial.variance, parallel.variance);

    // The special case's N + 1 solves are deterministic, so serial and
    // parallel coefficient sets must coincide exactly too.
    let sc_options = SpecialCaseOptions::order2(topts);
    let sc_serial = Parallelism::Serial
        .install(|| solve_leakage(&grid, &leakage, &sc_options))
        .unwrap()
        .unwrap();
    let sc_parallel = Parallelism::Threads(3)
        .install(|| solve_leakage(&grid, &leakage, &sc_options))
        .unwrap()
        .unwrap();
    let (node, k, _) = sc_serial.worst_mean_drop(grid.vdd());
    assert_eq!(sc_serial.mean_at(k, node), sc_parallel.mean_at(k, node));
    assert_eq!(
        sc_serial.std_dev_at(k, node),
        sc_parallel.std_dev_at(k, node)
    );
}

#[test]
fn parallel_monte_carlo_speeds_up_on_multicore_machines() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let grid = GridSpec::small_test(220).with_seed(3).build().unwrap();
    let model = StochasticGridModel::inter_die(&grid, &VariationSpec::paper_defaults()).unwrap();
    let options = MonteCarloOptions::new(32, 7, TransientOptions::new(0.1e-9, 2.0e-9));

    let t0 = Instant::now();
    let serial = Parallelism::Serial
        .install(|| run_monte_carlo(&model, &options))
        .unwrap()
        .unwrap();
    let serial_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel = Parallelism::Max
        .install(|| run_monte_carlo(&model, &options))
        .unwrap()
        .unwrap();
    let parallel_secs = t1.elapsed().as_secs_f64();

    assert_eq!(serial.mean, parallel.mean);
    let ratio = serial_secs / parallel_secs.max(1e-9);
    println!(
        "monte carlo wall-clock: serial {serial_secs:.3}s, \
         parallel({cores} cores) {parallel_secs:.3}s, speedup {ratio:.2}x"
    );
    // Only assert a real speedup where one is physically possible; wall-clock
    // thresholds on loaded single-core CI boxes would be noise.
    if cores >= 4 {
        assert!(
            ratio > 1.3,
            "expected parallel Monte Carlo to be faster on {cores} cores \
             (serial {serial_secs:.3}s vs parallel {parallel_secs:.3}s)"
        );
    }
}
