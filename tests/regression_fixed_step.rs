//! Regression pins for the fixed-step transient paths.
//!
//! The adaptive TR-BDF2 PR refactored `CompanionSystem` around
//! `CompanionFamily` (shared symbolic analysis, LRU'd numeric factors) and
//! threaded an `IntegrationMethod` through every stepping loop. Fixed-step
//! backward Euler and trapezoidal results must be **bit-identical** to the
//! pre-refactor behaviour: this file pins FNV-1a hashes of full
//! trajectories, computed on the pre-PR loop shape, so any future change
//! that perturbs a single mantissa bit of the fixed-step paths fails here.
//!
//! Adaptive stepping is opt-in: the defaults are also pinned (backward
//! Euler, no adaptive options on a default-built engine).

use opera::adaptive::AdaptiveOptions;
use opera::engine::OperaEngine;
use opera::transient::{
    solve_transient, CompanionFamily, CompanionSystem, IntegrationMethod, TransientOptions,
};
use opera_grid::GridSpec;
use opera_sparse::{CsrMatrix, TripletMatrix};

/// FNV-1a over the IEEE-754 bit patterns of a trajectory, order-sensitive.
/// The state panel is column-major with one column per time point, so
/// hashing its contiguous data visits exactly the pre-refactor
/// row-of-vectors order (time-major, node-minor).
fn fnv1a_bits(states: &opera_sparse::Panel) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &v in states.data() {
        for byte in v.to_bits().to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
    }
    hash
}

/// A fixed 4-node RC mesh with hand-picked values — no RNG, so the pinned
/// hashes are reproducible from the source alone.
fn pinned_circuit() -> (CsrMatrix, CsrMatrix) {
    let mut g = TripletMatrix::new(4, 4);
    let mut c = TripletMatrix::new(4, 4);
    for (i, (leak, cap)) in [(0.5, 1.0), (0.25, 0.5), (0.125, 2.0), (1.0, 0.75)]
        .into_iter()
        .enumerate()
    {
        g.push(i, i, leak);
        c.push(i, i, cap);
    }
    g.add_symmetric_pair(0, 1, 1.5);
    g.add_symmetric_pair(1, 2, 0.75);
    g.add_symmetric_pair(2, 3, 2.0);
    g.add_symmetric_pair(0, 3, 0.25);
    (g.to_csr(), c.to_csr())
}

fn pinned_excitation(t: f64) -> Vec<f64> {
    (0..4)
        .map(|i| 0.8 * ((i + 1) as f64 * (2.0 * t + 0.1)).sin())
        .collect()
}

#[test]
fn fixed_step_trajectories_are_bit_identical_to_the_pre_refactor_pins() {
    let (g, c) = pinned_circuit();
    // Hashes recorded from the pre-CompanionFamily stepping loop; the
    // refactor must not move a single bit.
    let pins = [
        (IntegrationMethod::BackwardEuler, 0xc8b1_2ef2_e494_9979_u64),
        (IntegrationMethod::Trapezoidal, 0x6046_e4f7_a090_8666_u64),
    ];
    for (method, expected) in pins {
        let options = TransientOptions {
            time_step: 0.125,
            end_time: 2.0,
            method,
        };
        let sol = solve_transient(&g, &c, pinned_excitation, &options).unwrap();
        let hash = fnv1a_bits(sol.states());
        assert_eq!(
            hash, expected,
            "{method:?}: fixed-step trajectory hash changed (got {hash:#018x})"
        );
    }
}

/// The family-built companion system must step bit-identically to a
/// one-shot `CompanionSystem::new` — the exact contract that lets the
/// engine swap its prepared solver onto the shared symbolic analysis.
#[test]
fn family_factors_step_bit_identically_to_one_shot_systems() {
    let (g, c) = pinned_circuit();
    let family = CompanionFamily::new(&g, &c).unwrap();
    for method in [
        IntegrationMethod::BackwardEuler,
        IntegrationMethod::Trapezoidal,
    ] {
        for h in [0.125, 0.25, 0.125] {
            let from_family = family.system_for(h, method).unwrap();
            let one_shot = CompanionSystem::new(&g, &c, h, method).unwrap();
            let v = pinned_excitation(0.3);
            let u_prev = pinned_excitation(0.0);
            let u_next = pinned_excitation(h);
            assert_eq!(
                from_family.step(&v, &u_prev, &u_next),
                one_shot.step(&v, &u_prev, &u_next),
                "{method:?} at h = {h}"
            );
        }
    }
    // Three distinct (h, method) factors, one symbolic analysis; the repeat
    // of h = 0.125 hit the LRU cache instead of refactoring.
    assert_eq!(family.symbolic_analysis_count(), 1);
    assert_eq!(family.refactorization_count(), 4);
}

#[test]
fn engine_defaults_keep_adaptive_stepping_opt_in() {
    // Backward Euler stays the default scheme…
    assert_eq!(
        TransientOptions::new(0.1, 1.0).method,
        IntegrationMethod::BackwardEuler
    );
    // …and a default-built engine carries no adaptive options, so
    // `solve_scenario` takes the fixed-step path unchanged.
    let engine = OperaEngine::for_grid(GridSpec::small_test(60).with_seed(7))
        .unwrap()
        .build()
        .unwrap();
    assert!(engine.adaptive_options().is_none());
    assert_eq!(engine.transient().method, IntegrationMethod::BackwardEuler);
    // Opting in flips the method to TR-BDF2 (the only scheme with an
    // embedded error estimate).
    let opted_in = OperaEngine::for_grid(GridSpec::small_test(60).with_seed(7))
        .unwrap()
        .adaptive(AdaptiveOptions::default())
        .build()
        .unwrap();
    assert!(opted_in.adaptive_options().is_some());
    assert_eq!(opted_in.transient().method, IntegrationMethod::TrBdf2);
}
