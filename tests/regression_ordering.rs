//! Ordering-quality and ordering-runtime regression tests behind the
//! `OrderingChoice::ApproximateMinimumDegree` default (PR 6, `docs/SPARSE.md`).
//!
//! Fill quality: AMD must never produce more factor fill than RCM on the
//! matrices this repository actually factors — the paper-grid companion and
//! both netlist fixtures. Runtime: the AMD ordering pass must stay
//! linear-ish on the Galerkin-augmented companion, the matrix whose exact
//! minimum-degree ordering ran for minutes and motivated the AMD tentpole.

use std::time::Instant;

use opera::galerkin::GalerkinSystem;
use opera_grid::GridSpec;
use opera_pce::OrthogonalBasis;
use opera_sparse::{ordering, CsrMatrix, OrderingChoice, SymbolicCholesky};
use opera_variation::{StochasticGridModel, VariationSpec};

/// Companion matrix `G + C/h` at the paper's 0.05 ns step.
fn companion(g: &CsrMatrix, c: &CsrMatrix) -> CsrMatrix {
    g.add_scaled(&c.scaled(1.0 / 0.05e-9), 1.0).unwrap()
}

fn fill_of(matrix: &CsrMatrix, choice: OrderingChoice) -> usize {
    SymbolicCholesky::analyze_with(matrix, choice)
        .unwrap()
        .nnz_l()
}

#[test]
fn amd_fill_never_exceeds_rcm_fill_on_paper_grid() {
    // A reduced paper grid keeps this a sub-second test; the full-scale
    // numbers live in the `orderings` section of `BENCH_6.json`.
    let grid = GridSpec::paper_grid(0)
        .unwrap()
        .scaled_nodes(0.15)
        .build()
        .unwrap();
    let m = companion(&grid.conductance_matrix(), &grid.capacitance_matrix());
    let amd = fill_of(&m, OrderingChoice::ApproximateMinimumDegree);
    let rcm = fill_of(&m, OrderingChoice::ReverseCuthillMckee);
    assert!(
        amd <= rcm,
        "AMD fill {amd} exceeds RCM fill {rcm} on the paper-grid companion"
    );
}

#[test]
fn amd_fill_never_exceeds_rcm_fill_on_netlist_fixtures() {
    for fixture in [
        "tests/fixtures/ibmpg_style.sp",
        "tests/fixtures/docs_chain.sp",
    ] {
        let lowered = opera_netlist::load(fixture).unwrap();
        let m = companion(
            &lowered.grid.conductance_matrix(),
            &lowered.grid.capacitance_matrix(),
        );
        let amd = fill_of(&m, OrderingChoice::ApproximateMinimumDegree);
        let rcm = fill_of(&m, OrderingChoice::ReverseCuthillMckee);
        assert!(
            amd <= rcm,
            "AMD fill {amd} exceeds RCM fill {rcm} on {fixture}"
        );
    }
}

/// The ordering pass itself (no symbolic analysis, no numeric work) must
/// scale linear-ish in the number of nonzeros on the Galerkin-augmented
/// companion. The budget is deliberately loose — 2 µs per nonzero plus a
/// second of slack covers debug builds and loaded CI boxes by an order of
/// magnitude, while the exact-minimum-degree pass this replaces blows
/// through it a hundredfold (minutes at full scale).
#[test]
fn amd_ordering_runtime_stays_linearish_on_augmented_companion() {
    // Scaled down for CI: dim ≈ 17k. The full 115k companion obeys the same
    // budget (`BENCH_6.json` records its measured analyze time).
    let scale = 0.15;
    let grid = GridSpec::paper_grid(0)
        .unwrap()
        .scaled_nodes(scale)
        .build()
        .unwrap();
    let model = StochasticGridModel::inter_die(&grid, &VariationSpec::paper_defaults()).unwrap();
    let basis = OrthogonalBasis::total_order_mixed(model.families(), model.n_vars(), 2).unwrap();
    let system = GalerkinSystem::assemble(&model, &basis).unwrap();
    let aug = companion(system.conductance(), system.capacitance());

    let csc = aug.to_csc();
    let t0 = Instant::now();
    let perm = ordering::approximate_minimum_degree(&csc);
    let elapsed = t0.elapsed().as_secs_f64();

    assert_eq!(perm.len(), aug.nrows());
    let budget = 2e-6 * aug.nnz() as f64 + 1.0;
    assert!(
        elapsed < budget,
        "AMD ordering took {elapsed:.3}s on {} nonzeros (budget {budget:.3}s)",
        aug.nnz()
    );
}
