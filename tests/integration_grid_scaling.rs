//! Integration test of the synthetic grid generator together with the sparse
//! solvers at several grid sizes, plus the end-to-end experiment driver.

use opera::analysis::{run_experiment, ExperimentConfig};
use opera_grid::{GridSpec, PAPER_GRID_NODE_COUNTS};
use opera_sparse::{cg, CholeskyFactor, OrderingChoice};

#[test]
fn generated_grids_scale_and_stay_solvable() {
    for &target in &[200usize, 800, 2_000] {
        let grid = GridSpec::industrial(target)
            .with_seed(target as u64)
            .build()
            .unwrap();
        grid.validate_connectivity().unwrap();
        let n = grid.node_count();
        assert!(
            (n as f64) > 0.85 * target as f64 && (n as f64) < 1.15 * target as f64,
            "target {target}, got {n}"
        );
        // The conductance matrix must be SPD-factorable with RCM ordering.
        let g = grid.conductance_matrix();
        let chol = CholeskyFactor::factor_with(&g, OrderingChoice::ReverseCuthillMckee).unwrap();
        let u = grid.excitation(0.0);
        let v = chol.solve(&u);
        assert!(g.residual_inf_norm(&v, &u) < 1e-8);
        // Every node must sit at or below VDD at DC.
        assert!(v.iter().all(|&vi| vi <= grid.vdd() + 1e-9));
    }
}

#[test]
fn direct_and_iterative_solvers_agree_on_a_grid_matrix() {
    let grid = GridSpec::industrial(900).with_seed(4).build().unwrap();
    let g = grid.conductance_matrix();
    let u = grid.excitation(0.0);
    let direct = CholeskyFactor::factor(&g).unwrap().solve(&u);
    let ic = cg::IncompleteCholesky::new(&g).unwrap();
    let iterative = cg::solve(
        &g,
        &u,
        &ic,
        cg::CgOptions {
            max_iterations: 5_000,
            tolerance: 1e-12,
        },
    )
    .unwrap();
    let max_diff = direct
        .iter()
        .zip(&iterative.x)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max)
        / grid.vdd();
    assert!(max_diff < 1e-8, "direct vs PCG differ by {max_diff} of VDD");
}

#[test]
fn paper_grid_specs_expose_the_seven_table1_sizes() {
    assert_eq!(PAPER_GRID_NODE_COUNTS.len(), 7);
    assert_eq!(PAPER_GRID_NODE_COUNTS[0], 19_181);
    assert_eq!(PAPER_GRID_NODE_COUNTS[6], 351_838);
}

#[test]
fn scaled_table1_experiment_runs_end_to_end() {
    // A strongly scaled-down version of Table 1 row 1 — the full-size run is
    // exercised by the benchmark harness, not the test suite.
    let config = ExperimentConfig::table1_row_scaled(0, 0.02, 30).unwrap();
    let report = run_experiment(&config).unwrap();
    assert!(report.node_count > 200);
    // With only 30 Monte Carlo samples (kept low so the test is fast) the
    // speed-up is not representative — the benchmark harness measures it at
    // realistic sample counts. Here we only require a sane positive ratio.
    assert!(report.speedup > 0.0);
    assert!(report.errors.avg_mean_error_percent < 0.5);
    assert!(report.opera.avg_three_sigma_percent_of_nominal > 5.0);
}
