//! Cross-crate integration test: the full OPERA pipeline (grid generation →
//! variation model → Galerkin solve) against the Monte Carlo baseline,
//! exercising every crate of the workspace together.

use opera::compare::compare;
use opera::monte_carlo::{run as run_monte_carlo, MonteCarloOptions};
use opera::response::drop_summary;
use opera::stochastic::{solve, OperaOptions};
use opera::transient::{solve_transient, TransientOptions};
use opera_grid::GridSpec;
use opera_variation::{StochasticGridModel, VariationSpec};

#[test]
fn opera_reproduces_monte_carlo_statistics_on_a_mesh_grid() {
    let grid = GridSpec::industrial(400).with_seed(101).build().unwrap();
    grid.validate_connectivity().unwrap();
    let model = StochasticGridModel::inter_die(&grid, &VariationSpec::paper_defaults()).unwrap();
    let transient = TransientOptions::new(0.1e-9, 1.0e-9);

    let opera = solve(&model, &OperaOptions::order2(transient)).unwrap();
    let mc = run_monte_carlo(&model, &MonteCarloOptions::new(400, 3, transient)).unwrap();
    let errors = compare(&opera, &mc, grid.vdd());

    // Accuracy in the spirit of Table 1: tiny µ error, few-percent σ error
    // (here limited by the 400-sample Monte Carlo noise).
    assert!(
        errors.avg_mean_error_percent < 0.1,
        "avg µ error {} %VDD",
        errors.avg_mean_error_percent
    );
    assert!(
        errors.avg_std_error_percent < 20.0,
        "avg σ error {} %",
        errors.avg_std_error_percent
    );
}

#[test]
fn three_sigma_spread_is_a_large_fraction_of_the_nominal_drop() {
    // The paper's headline observation: ±3σ ≈ ±30–46 % of the nominal drop.
    let grid = GridSpec::industrial(600).with_seed(55).build().unwrap();
    let model = StochasticGridModel::inter_die(&grid, &VariationSpec::paper_defaults()).unwrap();
    let transient = TransientOptions::new(0.1e-9, grid.waveform_end_time());
    let opera = solve(&model, &OperaOptions::order2(transient)).unwrap();
    let nominal = solve_transient(
        &grid.conductance_matrix(),
        &grid.capacitance_matrix(),
        |t| grid.excitation(t),
        &transient,
    )
    .unwrap();
    let summary = drop_summary(&opera, grid.vdd(), Some(&nominal));
    assert!(
        summary.avg_three_sigma_percent_of_nominal > 10.0,
        "±3σ is only {} % of the nominal drop",
        summary.avg_three_sigma_percent_of_nominal
    );
    assert!(summary.avg_three_sigma_percent_of_nominal < 100.0);
    // Mean ≈ nominal (paper: the difference is negligible as a % of VDD).
    assert!(summary.avg_mean_shift_percent_of_vdd < 0.5);
}

#[test]
fn larger_variation_produces_larger_spread() {
    let grid = GridSpec::industrial(300).with_seed(77).build().unwrap();
    let transient = TransientOptions::new(0.2e-9, 1.0e-9);

    let small = VariationSpec {
        width_3sigma: 0.05,
        thickness_3sigma: 0.05,
        channel_length_3sigma: 0.05,
        ..VariationSpec::paper_defaults()
    };
    let large = VariationSpec::paper_defaults();

    let spread = |spec: &VariationSpec| {
        let model = StochasticGridModel::inter_die(&grid, spec).unwrap();
        let sol = solve(&model, &OperaOptions::order2(transient)).unwrap();
        let (node, k, _) = sol.worst_mean_drop(grid.vdd());
        sol.std_dev_at(k, node)
    };
    let sigma_small = spread(&small);
    let sigma_large = spread(&large);
    assert!(
        sigma_large > 2.0 * sigma_small,
        "σ did not grow with the variation magnitude: {sigma_small} vs {sigma_large}"
    );
}
