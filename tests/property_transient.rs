//! Property tests of the workspace-reuse transient hot loop.
//!
//! The blocked-panel PR rebuilt `solve_transient` and `CompanionSystem`
//! around caller-provided buffers, double-buffered state and reusable
//! [`SolveWorkspace`]s. These tests pin the contract that made that refactor
//! safe: on random RC grids, the workspace path is **bit-identical** to a
//! fresh-allocation reference (the pre-refactor loop shape, rebuilt here
//! from the allocating `step`/`solve` primitives) for both Backward-Euler
//! and Trapezoidal schemes.

use proptest::prelude::*;

use opera::transient::{
    solve_transient, CompanionSystem, IntegrationMethod, TransientOptions, TransientSolution,
};
use opera_sparse::{CsrMatrix, MatrixFactor, Panel, SolveWorkspace, TripletMatrix};

/// A random RC ladder/mesh: SPD conductance (weighted Laplacian plus leak
/// conductances to ground) and a positive diagonal capacitance.
fn rc_grid(max_n: usize) -> impl Strategy<Value = (CsrMatrix, CsrMatrix)> {
    (2..max_n)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec((0..n, 0..n, 0.1f64..4.0), 1..3 * n),
                proptest::collection::vec(0.01f64..1.0, n),
                proptest::collection::vec(0.1f64..2.0, n),
            )
        })
        .prop_map(|(n, edges, leaks, caps)| {
            let mut g = TripletMatrix::new(n, n);
            let mut c = TripletMatrix::new(n, n);
            for (i, (&leak, &cap)) in leaks.iter().zip(&caps).enumerate() {
                g.push(i, i, leak);
                c.push(i, i, cap);
            }
            for (a, b, w) in edges {
                if a != b {
                    g.add_symmetric_pair(a, b, w);
                }
            }
            (g.to_csr(), c.to_csr())
        })
}

/// The pre-refactor reference loop: every step allocates a fresh state
/// vector through the allocating `step` primitive.
fn reference_transient(
    g: &CsrMatrix,
    c: &CsrMatrix,
    excitation: impl Fn(f64) -> Vec<f64>,
    options: &TransientOptions,
) -> TransientSolution {
    let times = options.time_points();
    let u0 = excitation(0.0);
    let v0 = MatrixFactor::cholesky_or_lu(g).unwrap().solve(&u0);
    let companion = CompanionSystem::new(g, c, options.time_step, options.method).unwrap();
    let mut voltages = Vec::with_capacity(times.len());
    voltages.push(v0);
    let mut u_prev = u0;
    for k in 1..times.len() {
        let u_next = excitation(times[k]);
        let v_next = companion.step(&voltages[k - 1], &u_prev, &u_next);
        voltages.push(v_next);
        u_prev = u_next;
    }
    TransientSolution::from_states(times, &voltages)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The workspace-reuse transient must match the fresh-allocation
    /// reference bit for bit, under both integration schemes.
    #[test]
    fn workspace_transient_is_bit_identical_to_fresh_allocation_reference(
        (g, c) in rc_grid(24),
        drive in 0.2f64..3.0,
    ) {
        let n = g.nrows();
        let excitation = move |t: f64| -> Vec<f64> {
            (0..n)
                .map(|i| drive * ((i + 1) as f64 * (t * 4.0 + 0.3)).sin())
                .collect()
        };
        for method in [IntegrationMethod::BackwardEuler, IntegrationMethod::Trapezoidal] {
            let options = TransientOptions {
                time_step: 0.25,
                end_time: 2.0,
                method,
            };
            let fast = solve_transient(&g, &c, excitation, &options).unwrap();
            let reference = reference_transient(&g, &c, excitation, &options);
            prop_assert_eq!(&fast.times, &reference.times);
            for (k, (a, b)) in fast
                .states()
                .columns()
                .zip(reference.states().columns())
                .enumerate()
            {
                prop_assert_eq!(a, b, "state differs at step {} under {:?}", k, method);
            }
        }
    }

    /// Panel stepping with per-column excitations must match column-wise
    /// scalar stepping bit for bit — the contract behind the multi-RHS
    /// special case, the batched engine and the leakage Monte Carlo.
    #[test]
    fn companion_panel_step_matches_scalar_steps(
        (g, c) in rc_grid(16),
        k in 1usize..=5,
    ) {
        let n = g.nrows();
        for method in [IntegrationMethod::BackwardEuler, IntegrationMethod::Trapezoidal] {
            let companion = CompanionSystem::new(&g, &c, 0.5, method).unwrap();
            let column = |j: usize, phase: f64| -> Vec<f64> {
                (0..n).map(|i| ((i + j + 1) as f64 * phase).cos()).collect()
            };
            let states: Vec<Vec<f64>> = (0..k).map(|j| column(j, 0.4)).collect();
            let u_prev: Vec<Vec<f64>> = (0..k).map(|j| column(j, 0.7)).collect();
            let u_next: Vec<Vec<f64>> = (0..k).map(|j| column(j, 1.1)).collect();
            let mut out = Panel::zeros(n, k);
            let mut ws = SolveWorkspace::new();
            companion.step_panel_into(
                &Panel::from_columns(&states),
                &Panel::from_columns(&u_prev),
                &Panel::from_columns(&u_next),
                &mut out,
                &mut ws,
            );
            for j in 0..k {
                let scalar = companion.step(&states[j], &u_prev[j], &u_next[j]);
                prop_assert_eq!(out.col(j), &scalar[..], "column {} under {:?}", j, method);
            }
        }
    }
}
