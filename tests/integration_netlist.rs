//! End-to-end tests of the netlist front end (ISSUE 4 acceptance criteria):
//! a golden IBM-style deck runs through `OperaEngine::for_netlist` under
//! both Galerkin and collocation, the `GridSpec → netlist` exporter
//! round-trips with bit-identical stamping, and `docs/NETLIST.md` only
//! references fixtures that exist.

use opera::engine::{CollocationConfig, OperaEngine, Scenario};
use opera_grid::GridSpec;
use opera_netlist::{export_grid, parse};

fn fixture(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn golden_deck_runs_galerkin_and_collocation() {
    let engine = OperaEngine::for_netlist(fixture("ibmpg_style.sp"))
        .unwrap()
        .mc_samples(25)
        .mc_seed(11)
        .build()
        .unwrap();
    let vdd = engine.grid().vdd();
    assert_eq!(vdd, 1.8);
    assert_eq!(engine.node_count(), 16);
    // The deck's .tran became the engine's transient window.
    assert_eq!(engine.transient().time_step, 20e-12);
    assert_eq!(engine.transient().end_time, 2e-9);
    // Two supply rails, four pads.
    assert_eq!(engine.grid().pad_nodes().len(), 4);

    // Galerkin solve, reported for a *named* node.
    let galerkin = engine.solve().unwrap();
    let (node, k, drop) = galerkin.worst_mean_drop(vdd);
    assert!(drop > 0.0);
    let name = engine.node_name(node).expect("netlist engines name nodes");
    assert!(name.starts_with("n1_"), "unexpected worst node {name}");

    // Collocation cross-check on the same engine: statistics agree.
    let colloc = engine.collocation(&CollocationConfig::smolyak(2)).unwrap();
    assert_eq!(colloc.symbolic_analyses, 1);
    let mean_diff = (colloc.solution.mean_at(k, node) - galerkin.mean_at(k, node)).abs();
    assert!(mean_diff < 1e-4 * vdd, "mean differs by {mean_diff}");
    let sigma_g = galerkin.std_dev_at(k, node);
    let sigma_c = colloc.solution.std_dev_at(k, node);
    assert!(sigma_g > 0.0);
    assert!(
        (sigma_g - sigma_c).abs() < 0.05 * sigma_g,
        "sigma {sigma_g} vs {sigma_c}"
    );

    // Full scenario run validates against its own Monte Carlo baseline.
    let report = engine.run_scenario(&Scenario::named("golden")).unwrap();
    assert!(
        report.report.errors.avg_mean_error_percent < 1.0,
        "OPERA disagrees with Monte Carlo on the golden deck: {} %VDD",
        report.report.errors.avg_mean_error_percent
    );
}

#[test]
fn exported_gridspec_deck_round_trips_with_bit_identical_stamping() {
    let spec = GridSpec::small_test(140).with_seed(9);
    let grid = spec.build().unwrap();
    let deck = export_grid(&grid, None).unwrap();
    let lowered = parse(&deck).unwrap().lower().unwrap();

    // The acceptance criterion: bit-identical stamping, not mere closeness.
    assert_eq!(grid.conductance_matrix(), lowered.grid.conductance_matrix());
    assert_eq!(grid.capacitance_matrix(), lowered.grid.capacitance_matrix());
    assert_eq!(grid.branches(), lowered.grid.branches());
    assert_eq!(grid.capacitors(), lowered.grid.capacitors());
    assert_eq!(grid.sources(), lowered.grid.sources());

    // Two engines — one per input path — produce bit-identical solutions
    // once they share the same transient window.
    let engine_grid = OperaEngine::for_grid(spec)
        .unwrap()
        .time_step(0.25e-9)
        .end_time(1.0e-9)
        .build()
        .unwrap();
    let engine_deck = OperaEngine::for_netlist_str(&deck)
        .unwrap()
        .time_step(0.25e-9)
        .end_time(1.0e-9)
        .build()
        .unwrap();
    let a = engine_grid.solve().unwrap();
    let b = engine_deck.solve().unwrap();
    assert_eq!(a.times(), b.times());
    let k = a.times().len() - 1;
    for node in 0..a.node_count() {
        assert_eq!(a.mean_at(k, node), b.mean_at(k, node), "node {node}");
        assert_eq!(
            a.variance_at(k, node),
            b.variance_at(k, node),
            "node {node}"
        );
    }
    // The deck engine additionally knows the exporter's node names.
    assert_eq!(engine_deck.node_name(0), Some("n0"));
    assert!(engine_grid.node_map().is_none());
}

#[test]
fn docs_chain_fixture_matches_its_hand_computation() {
    let lowered = opera_netlist::load(fixture("docs_chain.sp")).unwrap();
    let grid = &lowered.grid;
    // At the 1 mA plateau the DC drop at n2 is 1 mA · (0.1 + 0.2 + 0.2) Ω.
    let g = grid.conductance_matrix();
    let mut u = grid.pad_injection_vector();
    let n2 = lowered.nodes.index("n2").unwrap();
    u[n2] -= 1.0e-3;
    let v = opera_sparse::cholesky_solve(&g, &u).unwrap();
    let drop = grid.vdd() - v[n2];
    assert!(
        (drop - 0.5e-3).abs() < 1e-9,
        "documented worked example broke: drop = {drop} V"
    );
}

#[test]
fn netlist_docs_only_reference_existing_fixtures() {
    let root = env!("CARGO_MANIFEST_DIR");
    let docs = std::fs::read_to_string(format!("{root}/docs/NETLIST.md"))
        .expect("docs/NETLIST.md must exist (linked from README)");
    let mut referenced = Vec::new();
    let needle = "tests/fixtures/";
    let mut rest = docs.as_str();
    while let Some(pos) = rest.find(needle) {
        let tail = &rest[pos..];
        let end = tail
            .find(|c: char| !(c.is_ascii_alphanumeric() || "/._-".contains(c)))
            .unwrap_or(tail.len());
        // Bare mentions of the directory itself are not file references.
        if end > needle.len() {
            referenced.push(tail[..end].to_string());
        }
        rest = &tail[end..];
    }
    assert!(
        referenced.iter().any(|p| p.ends_with("ibmpg_style.sp")),
        "docs/NETLIST.md should reference the golden fixture"
    );
    for path in referenced {
        assert!(
            std::path::Path::new(root).join(&path).is_file(),
            "docs/NETLIST.md references missing fixture `{path}`"
        );
    }
}
