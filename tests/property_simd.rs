//! Property suite pinning the SIMD equivalence gate: every runtime-dispatched
//! vector kernel must be **bit-identical** to its scalar reference — the
//! pinned ULP budget is zero — on random inputs, for every backend the
//! executing CPU supports.
//!
//! Three layers are exercised:
//!
//! * the element-wise kernels (`axpy`, `axpy4`, `rank4_sub`, `add2_assign`,
//!   `weighted_sum3`, `welford_update`, …) on random lengths, so the
//!   vector body and the remainder (tail) lanes are both hit;
//! * the interleaved triangular kernels on random sparse lower/upper
//!   factors with `1..=8` active right-hand sides and zero-padded tail
//!   lanes — the exact layout `opera_sparse`'s panel bridge packs;
//! * the full `MatrixFactor::solve_panel` path on random SPD grids under
//!   `opera_simd::set_active`, the end-to-end contract the engine relies on.

use std::collections::BTreeMap;

use proptest::prelude::*;

use opera_simd::{available_backends, scalar, Backend, LANES};
use opera_sparse::{CsrMatrix, MatrixFactor, Panel, SolveWorkspace, TripletMatrix};

/// Bit view of a float slice: `assert_eq` on values would conflate
/// `-0.0 == 0.0`; the equivalence gate is on representations.
fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|v| v.to_bits()).collect()
}

/// Five equal-length random vectors, as `lanes_data` generates them.
type LanesData = (Vec<f64>, Vec<f64>, Vec<f64>, (Vec<f64>, Vec<f64>));

/// A sparse triangular factor in raw CSC form (`n`, `indptr`, `indices`,
/// `data`) plus an interleaved RHS, as `lower_factor` generates them.
type FactorAndRhs = ((usize, Vec<usize>, Vec<usize>, Vec<f64>), Vec<f64>);

/// Five equal-length random vectors (length 0..max_n, so remainder lanes
/// and the empty case are generated).
fn lanes_data(max_n: usize) -> impl Strategy<Value = LanesData> {
    (0..max_n).prop_flat_map(|n| {
        let v = || proptest::collection::vec(-50.0f64..50.0, n..=n);
        (v(), v(), v(), (v(), v()))
    })
}

/// A random sparse lower-triangular factor in CSC form (diagonal first,
/// then strictly-lower rows ascending — the convention the interleaved
/// kernels require), plus a random interleaved RHS scratch of `n * LANES`.
fn lower_factor(max_n: usize) -> impl Strategy<Value = FactorAndRhs> {
    (1..max_n)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec(1.0f64..4.0, n),
                proptest::collection::vec((0..n, 0..n, -0.9f64..0.9), 0..3 * n),
                proptest::collection::vec(-10.0f64..10.0, n * LANES),
            )
        })
        .prop_map(|(n, diag, entries, rhs)| {
            let mut cols: Vec<BTreeMap<usize, f64>> = vec![BTreeMap::new(); n];
            for (a, b, v) in entries {
                let (i, j) = (a.max(b), a.min(b));
                if i != j {
                    cols[j].insert(i, v);
                }
            }
            let mut indptr = vec![0];
            let mut indices = Vec::new();
            let mut data = Vec::new();
            for (j, col) in cols.iter().enumerate() {
                indices.push(j);
                data.push(diag[j]);
                for (&i, &v) in col {
                    indices.push(i);
                    data.push(v);
                }
                indptr.push(indices.len());
            }
            ((n, indptr, indices, data), rhs)
        })
}

/// Transposes a lower CSC factor into upper CSC form (diagonal last).
fn upper_of(
    indptr: &[usize],
    indices: &[usize],
    data: &[f64],
    n: usize,
) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
    let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for j in 0..n {
        for p in indptr[j]..indptr[j + 1] {
            cols[indices[p]].push((j, data[p]));
        }
    }
    let mut up = vec![0];
    let mut ui = Vec::new();
    let mut uv = Vec::new();
    for col in cols {
        for (i, v) in col {
            ui.push(i);
            uv.push(v);
        }
        up.push(ui.len());
    }
    (up, ui, uv)
}

/// A random SPD conductance matrix (weighted Laplacian plus leaks), the
/// same family the transient property suite solves.
fn spd_grid(max_n: usize) -> impl Strategy<Value = CsrMatrix> {
    (2..max_n)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec((0..n, 0..n, 0.1f64..4.0), 1..3 * n),
                proptest::collection::vec(0.05f64..1.0, n),
            )
        })
        .prop_map(|(n, edges, leaks)| {
            let mut g = TripletMatrix::new(n, n);
            for (i, &leak) in leaks.iter().enumerate() {
                g.push(i, i, leak);
            }
            for (a, b, w) in edges {
                if a != b {
                    g.add_symmetric_pair(a, b, w);
                }
            }
            g.to_csr()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every element-wise kernel matches the scalar reference bit for bit
    /// on every available backend, including the remainder lanes.
    #[test]
    fn elementwise_kernels_are_bit_identical_on_every_backend(
        (x, a, b, (d, y)) in lanes_data(100),
        c in -3.0f64..3.0,
        count in 1.0f64..500.0,
    ) {
        let n = x.len();
        for backend in available_backends() {
            let mut r = y.clone();
            let mut v = y.clone();
            scalar::axpy(&mut r, &x, c);
            opera_simd::axpy(&mut v, &x, c, backend);
            prop_assert_eq!(bits(&r), bits(&v), "axpy {} n={}", backend, n);

            let mut r = y.clone();
            let mut v = y.clone();
            scalar::sub_axpy(&mut r, &x, c);
            opera_simd::sub_axpy(&mut v, &x, c, backend);
            prop_assert_eq!(bits(&r), bits(&v), "sub_axpy {} n={}", backend, n);

            let cs = [c, -c, 0.5 * c, 1.5 * c];
            let (mut r0, mut r1, mut r2, mut r3) =
                (y.clone(), a.clone(), b.clone(), d.clone());
            let (mut v0, mut v1, mut v2, mut v3) =
                (y.clone(), a.clone(), b.clone(), d.clone());
            scalar::axpy4([&mut r0, &mut r1, &mut r2, &mut r3], &x, cs);
            opera_simd::axpy4([&mut v0, &mut v1, &mut v2, &mut v3], &x, cs, backend);
            prop_assert_eq!(bits(&r0), bits(&v0), "axpy4[0] {} n={}", backend, n);
            prop_assert_eq!(bits(&r1), bits(&v1), "axpy4[1] {} n={}", backend, n);
            prop_assert_eq!(bits(&r2), bits(&v2), "axpy4[2] {} n={}", backend, n);
            prop_assert_eq!(bits(&r3), bits(&v3), "axpy4[3] {} n={}", backend, n);

            let mut r = y.clone();
            let mut v = y.clone();
            scalar::rank4_sub(&mut r, [&x, &a, &b, &d], cs);
            opera_simd::rank4_sub(&mut v, [&x, &a, &b, &d], cs, backend);
            prop_assert_eq!(bits(&r), bits(&v), "rank4_sub {} n={}", backend, n);

            let mut r = y.clone();
            let mut v = y.clone();
            scalar::div_assign(&mut r, 1.0 + c.abs());
            opera_simd::div_assign(&mut v, 1.0 + c.abs(), backend);
            prop_assert_eq!(bits(&r), bits(&v), "div_assign {} n={}", backend, n);

            let mut r = y.clone();
            let mut v = y.clone();
            scalar::scale_assign(&mut r, c);
            opera_simd::scale_assign(&mut v, c, backend);
            prop_assert_eq!(bits(&r), bits(&v), "scale_assign {} n={}", backend, n);

            let mut r = y.clone();
            let mut v = y.clone();
            scalar::add_assign(&mut r, &x);
            opera_simd::add_assign(&mut v, &x, backend);
            prop_assert_eq!(bits(&r), bits(&v), "add_assign {} n={}", backend, n);

            let mut r = y.clone();
            let mut v = y.clone();
            scalar::add2_assign(&mut r, &a, &b);
            opera_simd::add2_assign(&mut v, &a, &b, backend);
            prop_assert_eq!(bits(&r), bits(&v), "add2_assign {} n={}", backend, n);

            let ws = [c, 1.0 - c, 0.25 * c];
            let mut r = vec![0.0; n];
            let mut v = vec![1.0; n];
            scalar::weighted_sum3(&mut r, [&a, &b, &d], ws);
            opera_simd::weighted_sum3(&mut v, [&a, &b, &d], ws, backend);
            prop_assert_eq!(bits(&r), bits(&v), "weighted_sum3 {} n={}", backend, n);

            let (mut mean_r, mut m2_r) = (a.clone(), b.clone());
            let (mut mean_v, mut m2_v) = (a.clone(), b.clone());
            scalar::welford_update(&mut mean_r, &mut m2_r, &x, count);
            opera_simd::welford_update(&mut mean_v, &mut m2_v, &x, count, backend);
            prop_assert_eq!(bits(&mean_r), bits(&mean_v), "welford mean {} n={}", backend, n);
            prop_assert_eq!(bits(&m2_r), bits(&m2_v), "welford m2 {} n={}", backend, n);
        }
    }

    /// The interleaved triangular kernels match scalar bit for bit on random
    /// sparse factors with `1..=8` active right-hand sides (tail lanes
    /// zero-padded, exactly as the panel bridge packs them).
    #[test]
    fn interleaved_triangular_kernels_are_bit_identical_on_every_backend(
        ((n, indptr, indices, data), rhs) in lower_factor(28),
        k in 1usize..=LANES,
    ) {
        let (up, ui, uv) = upper_of(&indptr, &indices, &data, n);
        // Zero the lanes beyond the k active right-hand sides.
        let mut scratch = rhs;
        for j in 0..n {
            for lane in k..LANES {
                scratch[j * LANES + lane] = 0.0;
            }
        }
        for backend in available_backends() {
            let mut r = scratch.clone();
            let mut v = scratch.clone();
            scalar::lower_solve_interleaved(&indptr, &indices, &data, n, &mut r);
            opera_simd::lower_solve_interleaved(&indptr, &indices, &data, n, &mut v, backend);
            prop_assert_eq!(bits(&r), bits(&v), "lower {} n={} k={}", backend, n, k);

            let mut r = scratch.clone();
            let mut v = scratch.clone();
            scalar::lower_transpose_solve_interleaved(&indptr, &indices, &data, n, &mut r);
            opera_simd::lower_transpose_solve_interleaved(
                &indptr, &indices, &data, n, &mut v, backend,
            );
            prop_assert_eq!(bits(&r), bits(&v), "lower-transpose {} n={} k={}", backend, n, k);

            let mut r = scratch.clone();
            let mut v = scratch.clone();
            scalar::upper_solve_interleaved(&up, &ui, &uv, n, &mut r);
            opera_simd::upper_solve_interleaved(&up, &ui, &uv, n, &mut v, backend);
            prop_assert_eq!(bits(&r), bits(&v), "upper {} n={} k={}", backend, n, k);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End to end: a full sparse `solve_panel` on a random SPD factor is
    /// bit-identical under every backend the CPU offers, for panels of
    /// `1..=8` right-hand sides — the contract that makes `OPERA_SIMD` a
    /// pure performance knob.
    #[test]
    fn factor_panel_solve_is_bit_identical_under_every_backend(
        g in spd_grid(40),
        k in 1usize..=LANES,
        drive in 0.2f64..3.0,
    ) {
        let n = g.nrows();
        let factor = MatrixFactor::cholesky_or_lu(&g).unwrap();
        let columns: Vec<Vec<f64>> = (0..k)
            .map(|j| {
                (0..n)
                    .map(|i| drive * ((i * k + j + 1) as f64 * 0.37).sin())
                    .collect()
            })
            .collect();
        let mut ws = SolveWorkspace::new();

        opera_simd::set_active(Backend::Scalar).unwrap();
        let mut reference = Panel::from_columns(&columns);
        factor.solve_panel(&mut reference, &mut ws);

        for backend in available_backends() {
            opera_simd::set_active(backend).unwrap();
            let mut panel = Panel::from_columns(&columns);
            factor.solve_panel(&mut panel, &mut ws);
            opera_simd::set_active(Backend::Scalar).unwrap();
            prop_assert_eq!(
                bits(reference.data()),
                bits(panel.data()),
                "solve_panel {} n={} k={}",
                backend, n, k
            );
        }
    }
}
