* Worked example from docs/NETLIST.md: a three-node chain behind one pad.
* At DC with I1 at its 1 mA plateau the drop at n2 is
* 1 mA x (0.1 + 0.2 + 0.2) ohm = 0.5 mV below the 1.2 V supply.
VDD supply 0 1.2
Rpad supply n0 0.1
Rw1  n0 n1 0.2
Rw2  n1 n2 0.2
C1   n1 0 1f class=gate
C2   n2 0 2f
I1   n2 0 PWL(0 0 0.2n 1m 0.8n 1m 1n 0)
.tran 10p 1n
.end
