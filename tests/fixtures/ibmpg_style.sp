* Golden fixture: IBM-power-grid-benchmark-style VDD-net deck.
* A 4x4 metal-1 mesh (nodes n1_<x>_<y>) fed from two supply rails through
* four corner pads. Three functional blocks draw clocked / ramped / static
* currents. Used by tests/integration_netlist.rs, the netlist_analysis
* example and docs/NETLIST.md.
*
* Layout:           pads at the four corners, 0.2 ohm each
*   n1_0_3 - n1_1_3 - n1_2_3 - n1_3_3
*     |        |        |        |
*   n1_0_2 - n1_1_2 - n1_2_2 - n1_3_2
*     |        |        |        |
*   n1_0_1 - n1_1_1 - n1_2_1 - n1_3_1
*     |        |        |        |
*   n1_0_0 - n1_1_0 - n1_2_0 - n1_3_0

* --- supplies (both rails at the same VDD level)
V1 vdd_rail_w 0 1.8
V2 vdd_rail_e 0 1.8

* --- corner pads (package + C4 bump resistance)
Rpad1 vdd_rail_w n1_0_0 0.2
Rpad2 vdd_rail_w n1_0_3 0.2
Rpad3 vdd_rail_e n1_3_0 0.2
Rpad4 vdd_rail_e n1_3_3 0.2

* --- horizontal stripes (0.4 ohm per segment)
Rh1  n1_0_0 n1_1_0 0.4
Rh2  n1_1_0 n1_2_0 0.4
Rh3  n1_2_0 n1_3_0 0.4
Rh4  n1_0_1 n1_1_1 0.4
Rh5  n1_1_1 n1_2_1 0.4
Rh6  n1_2_1 n1_3_1 0.4
Rh7  n1_0_2 n1_1_2 0.4
Rh8  n1_1_2 n1_2_2 0.4
Rh9  n1_2_2 n1_3_2 0.4
Rh10 n1_0_3 n1_1_3 0.4
Rh11 n1_1_3 n1_2_3 0.4
Rh12 n1_2_3 n1_3_3 0.4

* --- vertical stripes, named Rv* so they lower as vias (0.5 ohm)
Rv1  n1_0_0 n1_0_1 0.5
Rv2  n1_0_1 n1_0_2 0.5
Rv3  n1_0_2 n1_0_3 0.5
Rv4  n1_1_0 n1_1_1 0.5
Rv5  n1_1_1 n1_1_2 0.5
Rv6  n1_1_2 n1_1_3 0.5
Rv7  n1_2_0 n1_2_1 0.5
Rv8  n1_2_1 n1_2_2 0.5
Rv9  n1_2_2 n1_2_3 0.5
Rv10 n1_3_0 n1_3_1 0.5
Rv11 n1_3_1 n1_3_2 0.5
Rv12 n1_3_2 n1_3_3 0.5

* --- load capacitance: 8f gate + 10f diffusion + 2f interconnect per node
Cg0  n1_0_0 0 8f  class=gate
Cd0  n1_0_0 0 10f class=diffusion
Cw0  n1_0_0 0 2f  class=interconnect
Cg1  n1_1_0 0 8f  class=gate
Cd1  n1_1_0 0 10f class=diffusion
Cw1  n1_1_0 0 2f  class=interconnect
Cg2  n1_2_0 0 8f  class=gate
Cd2  n1_2_0 0 10f class=diffusion
Cw2  n1_2_0 0 2f  class=interconnect
Cg3  n1_3_0 0 8f  class=gate
Cd3  n1_3_0 0 10f class=diffusion
Cw3  n1_3_0 0 2f  class=interconnect
Cg4  n1_0_1 0 8f  class=gate
Cd4  n1_0_1 0 10f class=diffusion
Cw4  n1_0_1 0 2f  class=interconnect
Cg5  n1_1_1 0 8f  class=gate
Cd5  n1_1_1 0 10f class=diffusion
Cw5  n1_1_1 0 2f  class=interconnect
Cg6  n1_2_1 0 8f  class=gate
Cd6  n1_2_1 0 10f class=diffusion
Cw6  n1_2_1 0 2f  class=interconnect
Cg7  n1_3_1 0 8f  class=gate
Cd7  n1_3_1 0 10f class=diffusion
Cw7  n1_3_1 0 2f  class=interconnect
Cg8  n1_0_2 0 8f  class=gate
Cd8  n1_0_2 0 10f class=diffusion
Cw8  n1_0_2 0 2f  class=interconnect
Cg9  n1_1_2 0 8f  class=gate
Cd9  n1_1_2 0 10f class=diffusion
Cw9  n1_1_2 0 2f  class=interconnect
Cg10 n1_2_2 0 8f  class=gate
Cd10 n1_2_2 0 10f class=diffusion
Cw10 n1_2_2 0 2f  class=interconnect
Cg11 n1_3_2 0 8f  class=gate
Cd11 n1_3_2 0 10f class=diffusion
Cw11 n1_3_2 0 2f  class=interconnect
Cg12 n1_0_3 0 8f  class=gate
Cd12 n1_0_3 0 10f class=diffusion
Cw12 n1_0_3 0 2f  class=interconnect
Cg13 n1_1_3 0 8f  class=gate
Cd13 n1_1_3 0 10f class=diffusion
Cw13 n1_1_3 0 2f  class=interconnect
Cg14 n1_2_3 0 8f  class=gate
Cd14 n1_2_3 0 10f class=diffusion
Cw14 n1_2_3 0 2f  class=interconnect
Cg15 n1_3_3 0 8f  class=gate
Cd15 n1_3_3 0 10f class=diffusion
Cw15 n1_3_3 0 2f  class=interconnect

* --- block 0: clock-synchronous switching in the lower middle
Ib0a n1_1_1 0 PULSE(0 12m 0.1n 0.1n 0.15n 0.25n 1n) block=0
Ib0b n1_2_1 0 PULSE(0 9m  0.1n 0.1n 0.15n 0.25n 1n) block=0

* --- block 1: a data-dependent ramp in the upper middle (continuation line)
Ib1  n1_2_2 0 PWL(0 0 0.2n 4m 0.6n 4m
+ 0.9n 11m 1.2n 2m 2n 0) block=1

* --- block 2: static leakage draw
Ib2  n1_1_2 0 2m block=2

.tran 20p 2n
.end
