* Golden fixture: stiff RC ladder — a fast surface node (tau ~ 1ps) in
* front of a slow decap tank (tau ~ 1ns), so fixed-step schemes must
* resolve the fast mode everywhere while an adaptive controller only pays
* for it near the ramp.
VDD vdd 0 1.0
Rpad vdd top 0.1
Rw1  top mid 0.5
Rw2  mid leaf 2.0
C1   top  0 10f class=gate
C2   mid  0 50f
C3   leaf 0 2000f
I1   leaf 0 PWL(0 0 0.1n 5m 1n 5m)
.tran 5p 1n method=trbdf2
.end
