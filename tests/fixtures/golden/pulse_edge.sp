* Golden fixture: a single RC node hit by a sharp PULSE edge (10 ps
* rise/fall on a 100 fF / 0.2 ohm node). The interesting error lives in
* the two edges; the plateaus are trivially smooth.
VDD vdd 0 1.0
Rpad vdd n1 0.2
C1   n1 0 100f
I1   n1 0 PULSE(0 8m 0.1n 10p 10p 0.3n 0)
.tran 2p 1n method=trbdf2
.end
