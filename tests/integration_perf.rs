//! Integration tests of the blocked multi-RHS solve engine: the
//! zero-allocation steady-state contract, panel-batched scenario sweeps and
//! the thread-count invariance of the panel-grouped Monte Carlo.

use opera::engine::{OperaEngine, Scenario};
use opera::monte_carlo::{run_leakage, MonteCarloOptions};
use opera::special_case::{solve_leakage, solve_leakage_reference, SpecialCaseOptions};
use opera::transient::TransientOptions;
use opera::Parallelism;
use opera_grid::GridSpec;
use opera_variation::{LeakageModel, VariationSpec};

fn small_engine(solver: &str) -> OperaEngine {
    OperaEngine::for_grid(GridSpec::small_test(120))
        .unwrap()
        .variation(VariationSpec::paper_defaults())
        .solver_name(solver)
        .unwrap()
        .time_step(0.25e-9)
        .end_time(1.0e-9)
        .mc_samples(6)
        .mc_seed(3)
        .build()
        .unwrap()
}

/// The CI-enforced hot-loop contract: once the solver workspace is warm, a
/// steady-state transient step performs zero heap allocations, for both
/// direct backends.
#[test]
fn steady_state_transient_steps_allocate_nothing() {
    for solver in ["direct-cholesky", "left-looking-lu"] {
        let engine = small_engine(solver);
        assert_eq!(
            engine.steady_state_step_allocations().unwrap(),
            0,
            "{solver} allocated in the steady-state step loop"
        );
    }
}

/// Panel-batched `run_batch` must produce reports bit-identical to solving
/// every scenario alone, including when the batch mixes panel-eligible
/// scenarios (engine time grid) with ones that need a private factorisation
/// (time-step override).
#[test]
fn mixed_batches_match_individual_scenario_runs_bit_for_bit() {
    let engine = small_engine("direct-cholesky");
    let scenarios = vec![
        Scenario::named("light").with_current_scale(0.75),
        Scenario::named("nominal"),
        Scenario::named("heavy").with_current_scale(1.5),
        Scenario::named("fine").with_time_step(0.125e-9),
    ];
    let batch = engine.run_batch(&scenarios).unwrap();
    assert_eq!(batch.len(), scenarios.len());
    for (scenario, batched) in scenarios.iter().zip(&batch) {
        let alone = engine.run_scenario(scenario).unwrap();
        assert_eq!(batched.label, alone.label);
        assert_eq!(
            batched.report.opera, alone.report.opera,
            "{}: drop summary differs",
            scenario.label
        );
        assert_eq!(
            batched.report.errors, alone.report.errors,
            "{}: error summary differs",
            scenario.label
        );
    }
}

/// The panel-grouped leakage Monte Carlo must stay bit-identical across
/// worker-thread counts (the group partition is fixed, the fold is in sample
/// order, and each panel column performs the scalar arithmetic).
#[test]
fn panel_grouped_leakage_monte_carlo_is_thread_count_invariant() {
    let grid = GridSpec::small_test(90).with_seed(5).build().unwrap();
    let leakage = LeakageModel::uniform_slices(grid.node_count(), 2, 3.0e-5, 0.04, 23.0).unwrap();
    let mut opts = MonteCarloOptions::new(13, 9, TransientOptions::new(0.25e-9, 1.0e-9));
    opts.probe_nodes = vec![2];
    let runs: Vec<_> = [
        Parallelism::Serial,
        Parallelism::Threads(2),
        Parallelism::Threads(8),
    ]
    .iter()
    .map(|p| {
        p.install(|| run_leakage(&grid, &leakage, &opts))
            .unwrap()
            .unwrap()
    })
    .collect();
    for other in &runs[1..] {
        assert_eq!(runs[0].mean, other.mean);
        assert_eq!(runs[0].variance, other.variance);
        assert_eq!(runs[0].probe_traces, other.probe_traces);
    }
}

/// The panel special case and its per-column reference agree bit for bit
/// across thread counts too (the reference fans columns over the pool).
#[test]
fn special_case_panel_and_reference_agree_for_all_thread_counts() {
    let grid = GridSpec::small_test(80).with_seed(11).build().unwrap();
    let leakage = LeakageModel::uniform_slices(grid.node_count(), 2, 3.0e-5, 0.04, 23.0).unwrap();
    let opts = SpecialCaseOptions::order2(TransientOptions::new(0.25e-9, 1.0e-9));
    let panel = solve_leakage(&grid, &leakage, &opts).unwrap();
    for p in [Parallelism::Serial, Parallelism::Threads(8)] {
        let reference = p
            .install(|| solve_leakage_reference(&grid, &leakage, &opts))
            .unwrap()
            .unwrap();
        let k = panel.times().len() - 1;
        for j in 0..panel.basis_size() {
            for n in 0..grid.node_count() {
                assert_eq!(
                    panel.coefficient(k, j, n),
                    reference.coefficient(k, j, n),
                    "({k}, {j}, {n}) differs at {p:?}"
                );
            }
        }
    }
}
