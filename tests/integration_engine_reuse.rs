//! Integration test for the setup-once/solve-many contract of `OperaEngine`:
//! a batch of K scenarios must be served by exactly one Galerkin assembly and
//! one factorisation (counted via the engine's test hooks), while returning
//! statistics bit-identical to K independent one-shot `run_experiment` calls
//! that each rebuild everything from scratch.

use opera::analysis::{run_experiment, ExperimentConfig};
use opera::engine::{OperaEngine, Scenario};
use opera::solver::{BLOCK_JACOBI_CG, LEFT_LOOKING_LU};

#[test]
fn run_batch_shares_one_assembly_and_matches_one_shot_runs_bit_for_bit() {
    let config = ExperimentConfig::quick_demo(140);
    let engine = OperaEngine::from_config(&config).unwrap();
    assert_eq!(engine.assembly_count(), 1);
    assert_eq!(engine.factorization_count(), 1);

    // K scenarios differing only in their Monte Carlo seed: pure reuse.
    let seeds = [7u64, 1001, 2002];
    let scenarios: Vec<Scenario> = seeds
        .iter()
        .map(|&seed| Scenario::named(format!("seed-{seed}")).with_mc_seed(seed))
        .collect();
    let batch = engine.run_batch(&scenarios).unwrap();
    assert_eq!(batch.len(), seeds.len());

    // The whole batch was served by the one assembly + one factorisation
    // performed at engine build time.
    assert_eq!(engine.assembly_count(), 1, "run_batch re-assembled");
    assert_eq!(engine.factorization_count(), 1, "run_batch re-factored");

    // Each batched report must be bit-identical (timings aside) to the
    // corresponding one-shot experiment, which rebuilds grid, model, system
    // and factorisation from scratch.
    for (&seed, batched) in seeds.iter().zip(&batch) {
        let mut one_shot_config = config.clone();
        one_shot_config.mc_seed = seed;
        let one_shot = run_experiment(&one_shot_config).unwrap();

        assert_eq!(batched.report.node_count, one_shot.node_count);
        assert_eq!(batched.report.mc_samples, one_shot.mc_samples);
        // DropSummary and AccuracySummary are PartialEq over raw f64 fields:
        // equality here means bit-identical statistics.
        assert_eq!(batched.report.opera, one_shot.opera, "seed {seed}");
        assert_eq!(batched.report.errors, one_shot.errors, "seed {seed}");
        // Distribution histograms: same probe, same bins, same counts.
        assert_eq!(batched.report.distribution.node, one_shot.distribution.node);
        assert_eq!(
            batched.report.distribution.time_index,
            one_shot.distribution.time_index
        );
        assert_eq!(
            batched.report.distribution.opera.edges(),
            one_shot.distribution.opera.edges()
        );
        assert_eq!(
            batched.report.distribution.opera.counts(),
            one_shot.distribution.opera.counts()
        );
        assert_eq!(
            batched.report.distribution.monte_carlo.counts(),
            one_shot.distribution.monte_carlo.counts()
        );
    }
}

#[test]
fn time_step_overrides_refactor_but_never_reassemble() {
    let engine = OperaEngine::from_config(&ExperimentConfig::quick_demo(120)).unwrap();
    let scenarios = [
        Scenario::named("baseline"),
        Scenario::named("fine").with_time_step(0.1e-9),
        Scenario::named("short").with_end_time(0.6e-9),
    ];
    let reports = engine.run_batch(&scenarios).unwrap();
    assert_eq!(reports.len(), 3);
    // Exactly one extra preparation (for the fine time step); the end-time
    // override shares the baseline factorisation, and nothing re-assembles.
    assert_eq!(engine.assembly_count(), 1);
    assert_eq!(engine.factorization_count(), 2);
    // A finer step means more time points, same physics: worst drops differ
    // by discretisation only.
    let base = reports[0].report.opera.worst_mean_drop;
    let fine = reports[1].report.opera.worst_mean_drop;
    assert!((base - fine).abs() / base < 0.2, "base {base}, fine {fine}");
}

#[test]
fn solver_backends_are_interchangeable_through_the_config_front_end() {
    let direct = run_experiment(&ExperimentConfig::quick_demo(110)).unwrap();
    for backend in [BLOCK_JACOBI_CG, LEFT_LOOKING_LU] {
        let config = ExperimentConfig::quick_demo(110).with_solver(backend);
        let report = run_experiment(&config).unwrap();
        // Same grid and seeds; only the augmented-system solver differs, so
        // the statistics agree to solver tolerance.
        let rel = (report.opera.worst_mean_drop - direct.opera.worst_mean_drop).abs()
            / direct.opera.worst_mean_drop;
        assert!(rel < 1e-6, "{backend}: worst drop differs by {rel}");
        assert_eq!(report.distribution.node, direct.distribution.node);
    }
}
