//! Property tests of the LTE-driven adaptive step-size controller.
//!
//! On random RC grids with random smooth drives, the controller must honour
//! its structural contract no matter what the error estimator does:
//!
//! * every accepted time lies strictly inside `[t0, t_end]`, the sequence is
//!   strictly monotone, starts at `t0` and ends **exactly** at `t_end`;
//! * rejected steps are never emitted — the accepted trajectory length is
//!   `steps_accepted + 1` and the attempt count balances;
//! * the dense output is **bit-exact** at accepted step times that coincide
//!   with output points (interpolation never replaces a solved state);
//! * tightening the tolerance converges the adaptive result to a fine
//!   fixed-step TR-BDF2 reference;
//! * the whole run performs exactly one symbolic analysis.

use proptest::prelude::*;

use opera::adaptive::{solve_transient_adaptive, AdaptiveOptions};
use opera::transient::{IntegrationMethod, TransientOptions};
use opera_sparse::{CsrMatrix, TripletMatrix};

/// A random RC mesh: SPD conductance (weighted Laplacian plus leaks to
/// ground) and a positive diagonal capacitance.
fn rc_grid(max_n: usize) -> impl Strategy<Value = (CsrMatrix, CsrMatrix)> {
    (2..max_n)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec((0..n, 0..n, 0.1f64..4.0), 1..3 * n),
                proptest::collection::vec(0.05f64..1.0, n),
                proptest::collection::vec(0.1f64..2.0, n),
            )
        })
        .prop_map(|(n, edges, leaks, caps)| {
            let mut g = TripletMatrix::new(n, n);
            let mut c = TripletMatrix::new(n, n);
            for (i, (&leak, &cap)) in leaks.iter().zip(&caps).enumerate() {
                g.push(i, i, leak);
                c.push(i, i, cap);
            }
            for (a, b, w) in edges {
                if a != b {
                    g.add_symmetric_pair(a, b, w);
                }
            }
            (g.to_csr(), c.to_csr())
        })
}

/// A smooth per-node drive (sums of decaying exponentials, no kinks), so
/// the convergence property is not limited by excitation discontinuities.
fn smooth_drive(n: usize, amp: f64, rate: f64) -> impl Fn(f64) -> Vec<f64> + Copy {
    move |t: f64| {
        (0..n)
            .map(|i| amp * (1.0 - (-(rate + i as f64 * 0.3) * t).exp()))
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Structural invariants of the accepted trajectory and the stats.
    #[test]
    fn accepted_trajectory_is_monotone_bounded_and_balanced(
        (g, c) in rc_grid(12),
        amp in 0.2f64..2.0,
        rate in 0.5f64..4.0,
    ) {
        let n = g.nrows();
        let options = TransientOptions {
            time_step: 0.1,
            end_time: 1.5,
            method: IntegrationMethod::TrBdf2,
        };
        let sol = solve_transient_adaptive(
            &g,
            &c,
            smooth_drive(n, amp, rate),
            &options,
            &AdaptiveOptions::with_rel_tol(1e-4),
        )
        .unwrap();

        // Monotone, inside the horizon, exact endpoints.
        prop_assert_eq!(sol.accepted_times[0], 0.0);
        prop_assert_eq!(*sol.accepted_times.last().unwrap(), options.end_time);
        for w in sol.accepted_times.windows(2) {
            prop_assert!(w[1] > w[0], "non-monotone accepted times {:?}", w);
            prop_assert!(w[1] <= options.end_time);
        }

        // Rejected steps are never emitted, and the attempt count balances.
        prop_assert_eq!(
            sol.accepted_times.len() as u64,
            sol.stats.steps_accepted + 1
        );
        prop_assert_eq!(sol.accepted_states.len(), sol.accepted_times.len());
        prop_assert_eq!(
            sol.stats.steps_attempted,
            sol.stats.steps_accepted + sol.stats.steps_rejected
        );

        // One symbolic analysis for the whole run; every factor reused it.
        prop_assert_eq!(sol.stats.symbolic_analyses, 1);
    }

    /// Wherever an output point coincides with an accepted step time, the
    /// reported row is the solved state bit for bit, not an interpolation.
    #[test]
    fn dense_output_is_bit_exact_at_accepted_step_points(
        (g, c) in rc_grid(10),
        amp in 0.2f64..2.0,
    ) {
        let n = g.nrows();
        let options = TransientOptions {
            time_step: 0.125,
            end_time: 2.0,
            method: IntegrationMethod::TrBdf2,
        };
        let sol = solve_transient_adaptive(
            &g,
            &c,
            smooth_drive(n, amp, 1.0),
            &options,
            &AdaptiveOptions::with_rel_tol(1e-4),
        )
        .unwrap();
        let mut checked = 0usize;
        for (k, &t_out) in sol.solution.times.iter().enumerate() {
            if let Some(i) = sol.accepted_times.iter().position(|&t| t == t_out) {
                prop_assert_eq!(
                    sol.solution.state_at(k),
                    sol.accepted_states[i].as_slice(),
                    "output row at t = {} differs from the accepted state",
                    t_out
                );
                checked += 1;
            }
        }
        // t0 and t_end always coincide by construction.
        prop_assert!(checked >= 2);
    }

    /// Tightening rel_tol converges the adaptive result to a fine
    /// fixed-step TR-BDF2 reference, monotonically in tolerance decades.
    #[test]
    fn tightening_the_tolerance_converges_to_the_fixed_step_reference(
        (g, c) in rc_grid(8),
        amp in 0.2f64..1.5,
    ) {
        let n = g.nrows();
        let drive = smooth_drive(n, amp, 2.0);
        let options = TransientOptions {
            time_step: 0.1,
            end_time: 1.0,
            method: IntegrationMethod::TrBdf2,
        };
        let fine = TransientOptions {
            time_step: 0.1 / 256.0,
            end_time: 1.0,
            method: IntegrationMethod::TrBdf2,
        };
        let reference = opera::transient::solve_transient(&g, &c, drive, &fine).unwrap();

        let error_against_reference = |rel_tol: f64| -> f64 {
            let sol = solve_transient_adaptive(
                &g,
                &c,
                drive,
                &options,
                &AdaptiveOptions::with_rel_tol(rel_tol),
            )
            .unwrap();
            let mut worst = 0.0f64;
            for (k, &t) in sol.solution.times.iter().enumerate() {
                let r = reference
                    .times
                    .iter()
                    .position(|&tr| (tr - t).abs() < 1e-12)
                    .unwrap();
                for j in 0..n {
                    worst =
                        worst.max((sol.solution.state_at(k)[j] - reference.state_at(r)[j]).abs());
                }
            }
            worst
        };

        let loose = error_against_reference(1e-2);
        let tight = error_against_reference(1e-6);
        prop_assert!(
            tight <= loose.max(1e-9),
            "tightening did not converge: loose {loose:e}, tight {tight:e}"
        );
        prop_assert!(tight < 1e-4, "tightest run still off by {tight:e}");
    }
}
