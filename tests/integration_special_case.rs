//! Integration test for the Section 5.1 special case (RHS-only variations)
//! across the grid, variation and core crates.

use opera::monte_carlo::{run_leakage, MonteCarloOptions};
use opera::special_case::{solve_leakage, SpecialCaseOptions};
use opera::transient::TransientOptions;
use opera_grid::GridSpec;
use opera_variation::LeakageModel;

#[test]
fn special_case_statistics_match_monte_carlo_across_regions() {
    let grid = GridSpec::industrial(350).with_seed(909).build().unwrap();
    let leakage = LeakageModel::uniform_slices(grid.node_count(), 4, 2.0e-5, 0.05, 23.0).unwrap();
    let transient = TransientOptions::new(0.2e-9, 1.0e-9);

    let opera = solve_leakage(&grid, &leakage, &SpecialCaseOptions::order2(transient)).unwrap();
    assert_eq!(opera.basis_size(), 15); // 4 variables, order 2.

    let mc = run_leakage(&grid, &leakage, &MonteCarloOptions::new(400, 5, transient)).unwrap();
    let (node, k, _) = opera.worst_mean_drop(grid.vdd());
    let mean_err = (opera.mean_at(k, node) - mc.mean[k][node]).abs() / grid.vdd();
    assert!(mean_err < 2e-3, "mean error {mean_err}");
    let sigma_opera = opera.std_dev_at(k, node);
    let sigma_mc = mc.std_dev_at(k, node);
    assert!(sigma_mc > 0.0);
    assert!(
        (sigma_opera - sigma_mc).abs() / sigma_mc < 0.35,
        "σ mismatch: {sigma_opera} vs {sigma_mc}"
    );
}

#[test]
fn higher_order_expansion_captures_the_lognormal_tail_better() {
    // The leakage is lognormal, so a higher-order Hermite expansion of the
    // RHS should track its variance more closely. Compare the predicted
    // variance of the leakage-driven response at order 1, 2 and 3 — they
    // must increase monotonically toward the exact lognormal variance.
    let grid = GridSpec::industrial(250).with_seed(31).build().unwrap();
    // A moderate lognormal (λ·σ_Vth ≈ 0.69) so the Hermite series converges
    // within the first few orders; for much larger spreads the coefficients
    // e^{s²} s^{2k}/k! keep growing until k ≈ s² and order 3 is not enough.
    let leakage = LeakageModel::uniform_slices(grid.node_count(), 2, 4.0e-5, 0.03, 23.0).unwrap();
    let transient = TransientOptions::new(0.5e-9, 1.0e-9);

    let mut variances = Vec::new();
    for order in 1..=3u32 {
        let sol = solve_leakage(&grid, &leakage, &SpecialCaseOptions { order, transient }).unwrap();
        let (node, k, _) = sol.worst_mean_drop(grid.vdd());
        variances.push(sol.variance_at(k, node));
    }
    assert!(
        variances[1] >= variances[0] && variances[2] >= variances[1],
        "variance did not increase with order: {variances:?}"
    );
    // Order 2 → 3 must be a much smaller jump than 1 → 2 (convergence).
    let first_jump = variances[1] - variances[0];
    let second_jump = variances[2] - variances[1];
    assert!(
        second_jump <= first_jump,
        "no sign of convergence: jumps {first_jump} then {second_jump}"
    );
}
