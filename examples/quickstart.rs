//! Quickstart: stochastic IR-drop analysis of a small synthetic power grid.
//!
//! Builds a ~2,000-node grid, applies the paper's process-variation
//! magnitudes (20 % W, 15 % T, 20 % Leff at 3σ) and constructs an
//! [`OperaEngine`]: grid elaboration, Galerkin assembly and the solver
//! factorisation happen once. The engine then serves the order-2 OPERA
//! solve, a Monte Carlo validation and a rescaled what-if scenario — all
//! against the same prepared system.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use opera::compare::compare;
use opera::engine::{McConfig, OperaEngine, Scenario};
use opera::response::drop_summary;
use opera_grid::GridSpec;
use opera_variation::VariationSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the engine: generate a synthetic "industrial-like" grid with
    //    ~2,000 nodes, attach the paper's inter-die variation model (ξ_G,
    //    ξ_L) and assemble + factor the augmented system once.
    let variation = VariationSpec::paper_defaults();
    println!(
        "variation: 3σ of {:.0}% (W), {:.0}% (T) -> {:.0}% (ξ_G), {:.0}% (Leff)",
        100.0 * variation.width_3sigma,
        100.0 * variation.thickness_3sigma,
        100.0 * variation.conductance_3sigma(),
        100.0 * variation.channel_length_3sigma,
    );
    let engine = OperaEngine::for_grid(GridSpec::industrial(2_000).with_seed(1))?
        .variation(variation)
        .order(2)
        .time_step(0.05e-9)
        .build()?;
    let grid = engine.grid();
    println!(
        "grid: {} nodes, {} pads, {} current sources, VDD = {:.2} V",
        grid.node_count(),
        grid.pad_nodes().len(),
        grid.sources().len(),
        grid.vdd()
    );
    println!(
        "engine: {} basis functions prepared in {:.2} s (assembly + factorisation, done once)",
        engine.basis_size(),
        engine.setup_seconds()
    );

    // 2. OPERA: one augmented transient solve on the prepared system.
    let started = std::time::Instant::now();
    let solution = engine.solve()?;
    let opera_time = started.elapsed();
    let summary = drop_summary(&solution, grid.vdd(), None);
    println!(
        "\nOPERA solve ({} time points) finished in {:.2?}",
        solution.times().len(),
        opera_time
    );
    println!(
        "worst mean drop: {:.2} mV at node {} (σ = {:.2} mV)",
        1e3 * summary.worst_mean_drop,
        summary.worst_node,
        1e3 * summary.sigma_at_worst
    );
    println!(
        "±3σ spread: avg {:.1} % / max {:.1} % of the nominal drop ({} loaded nodes)",
        summary.avg_three_sigma_percent_of_nominal,
        summary.max_three_sigma_percent_of_nominal,
        summary.loaded_nodes
    );

    // 3. Validate against a small Monte Carlo run on the same engine (the
    //    paper uses 1000 samples; 100 keeps the example fast).
    let started = std::time::Instant::now();
    let mc = engine.monte_carlo(&McConfig::new(100, 7))?;
    let mc_time = started.elapsed();
    let errors = compare(&solution, &mc, grid.vdd());
    println!(
        "\nMonte Carlo with {} samples finished in {:.2?} (speed-up {:.0}x)",
        mc.samples,
        mc_time,
        mc_time.as_secs_f64() / opera_time.as_secs_f64()
    );
    println!(
        "accuracy vs MC: µ error avg {:.4} % / max {:.4} % of VDD, σ error avg {:.2} % / max {:.2} %",
        errors.avg_mean_error_percent,
        errors.max_mean_error_percent,
        errors.avg_std_error_percent,
        errors.max_std_error_percent
    );

    // 4. A what-if scenario — 30 % heavier switching activity — reuses the
    //    same assembly and factorisation (a pure right-hand-side change).
    let heavy = engine.solve_scenario(&Scenario::named("heavy").with_current_scale(1.3))?;
    let (node, k, heavy_drop) = heavy.worst_mean_drop(grid.vdd());
    println!(
        "\nscenario 1.3x currents: worst drop {:.2} mV (σ = {:.2} mV) — \
         still {} assembly / {} factorisation in total",
        1e3 * heavy_drop,
        1e3 * heavy.std_dev_at(k, node),
        engine.assembly_count(),
        engine.factorization_count()
    );
    Ok(())
}
