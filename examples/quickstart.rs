//! Quickstart: stochastic IR-drop analysis of a small synthetic power grid.
//!
//! Builds a ~2,000-node grid, applies the paper's process-variation
//! magnitudes (20 % W, 15 % T, 20 % Leff at 3σ), runs OPERA with an order-2
//! Hermite expansion and prints the voltage-drop statistics at the worst
//! node, comparing them against a small Monte Carlo run.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use opera::compare::compare;
use opera::monte_carlo::{run as run_monte_carlo, MonteCarloOptions};
use opera::response::drop_summary;
use opera::stochastic::{solve, OperaOptions};
use opera::transient::TransientOptions;
use opera_grid::GridSpec;
use opera_variation::{StochasticGridModel, VariationSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a synthetic "industrial-like" grid with ~2,000 nodes.
    let grid = GridSpec::industrial(2_000).with_seed(1).build()?;
    println!(
        "grid: {} nodes, {} pads, {} current sources, VDD = {:.2} V",
        grid.node_count(),
        grid.pad_nodes().len(),
        grid.sources().len(),
        grid.vdd()
    );

    // 2. Attach the paper's inter-die variation model (ξ_G, ξ_L).
    let variation = VariationSpec::paper_defaults();
    println!(
        "variation: 3σ of {:.0}% (W), {:.0}% (T) -> {:.0}% (ξ_G), {:.0}% (Leff)",
        100.0 * variation.width_3sigma,
        100.0 * variation.thickness_3sigma,
        100.0 * variation.conductance_3sigma(),
        100.0 * variation.channel_length_3sigma,
    );
    let model = StochasticGridModel::inter_die(&grid, &variation)?;

    // 3. Run OPERA: one augmented transient solve with an order-2 expansion.
    let transient = TransientOptions::new(0.05e-9, grid.waveform_end_time());
    let started = std::time::Instant::now();
    let solution = solve(&model, &OperaOptions::order2(transient))?;
    let opera_time = started.elapsed();
    let summary = drop_summary(&solution, grid.vdd(), None);
    println!(
        "\nOPERA ({} basis functions, {} time points) finished in {:.2?}",
        solution.basis_size(),
        solution.times().len(),
        opera_time
    );
    println!(
        "worst mean drop: {:.2} mV at node {} (σ = {:.2} mV)",
        1e3 * summary.worst_mean_drop,
        summary.worst_node,
        1e3 * summary.sigma_at_worst
    );
    println!(
        "±3σ spread: avg {:.1} % / max {:.1} % of the nominal drop ({} loaded nodes)",
        summary.avg_three_sigma_percent_of_nominal,
        summary.max_three_sigma_percent_of_nominal,
        summary.loaded_nodes
    );

    // 4. Validate against a small Monte Carlo run (the paper uses 1000
    //    samples; 100 keeps the example fast).
    let started = std::time::Instant::now();
    let mc = run_monte_carlo(&model, &MonteCarloOptions::new(100, 7, transient))?;
    let mc_time = started.elapsed();
    let errors = compare(&solution, &mc, grid.vdd());
    println!(
        "\nMonte Carlo with {} samples finished in {:.2?} (speed-up {:.0}x)",
        mc.samples,
        mc_time,
        mc_time.as_secs_f64() / opera_time.as_secs_f64()
    );
    println!(
        "accuracy vs MC: µ error avg {:.4} % / max {:.4} % of VDD, σ error avg {:.2} % / max {:.2} %",
        errors.avg_mean_error_percent,
        errors.max_mean_error_percent,
        errors.avg_std_error_percent,
        errors.max_std_error_percent
    );
    Ok(())
}
