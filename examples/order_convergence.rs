//! Ablation: truncation order and number of random variables.
//!
//! The paper argues that an order 2/3 expansion is sufficient for realistic
//! variation magnitudes, and that the cost grows as O(r^p) with the number of
//! random variables r and order p. This example sweeps the order for both the
//! combined 2-variable model (ξ_G, ξ_L) and the split 3-variable model
//! (ξ_W, ξ_T, ξ_L), building one [`OperaEngine`] per point so the setup
//! (assembly + factorisation) and the marginal solve cost are reported
//! separately, with accuracy measured against a common Monte Carlo reference.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example order_convergence
//! ```

use opera::compare::compare;
use opera::engine::{McConfig, OperaEngine};
use opera_grid::GridSpec;
use opera_variation::{StochasticGridModel, VariationSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = GridSpec::industrial(1_200).with_seed(5).build()?;
    let time_step = 0.1e-9;
    let spec = VariationSpec::paper_defaults();

    let models = [
        (
            "2 vars (ξ_G, ξ_L)",
            StochasticGridModel::inter_die(&grid, &spec)?,
        ),
        (
            "3 vars (ξ_W, ξ_T, ξ_L)",
            StochasticGridModel::inter_die_three_variable(&grid, &spec)?,
        ),
    ];

    println!(
        "{:<24} {:>5} {:>8} {:>12} {:>12} {:>10} {:>10}",
        "model", "order", "N+1", "µ err %VDD", "σ err %", "setup (s)", "solve (s)"
    );
    for (name, model) in &models {
        // A common Monte Carlo reference per model, run off the first order's
        // engine (the baseline only depends on the model, not the order).
        let mut mc = None;
        for order in 1..=3u32 {
            let engine = OperaEngine::for_model(model.clone())
                .order(order)
                .time_step(time_step)
                .build()?;
            if mc.is_none() {
                mc = Some(engine.monte_carlo(&McConfig::new(300, 17))?);
            }
            let mc = mc.as_ref().expect("reference just computed");
            let started = std::time::Instant::now();
            let solution = engine.solve()?;
            let solve_seconds = started.elapsed().as_secs_f64();
            let errors = compare(&solution, mc, grid.vdd());
            println!(
                "{:<24} {:>5} {:>8} {:>12.5} {:>12.2} {:>10.3} {:>10.3}",
                name,
                order,
                engine.basis_size(),
                errors.avg_mean_error_percent,
                errors.avg_std_error_percent,
                engine.setup_seconds(),
                solve_seconds
            );
        }
    }
    println!(
        "\nNote: the σ error against a 300-sample Monte Carlo plateaus at the MC noise floor;\n\
         the order-2 → order-3 difference shows the truncation is already converged (paper §5.2).\n\
         The setup column is paid once per engine — batches of scenarios amortise it."
    );
    Ok(())
}
