//! Ablation: truncation order and number of random variables.
//!
//! The paper argues that an order 2/3 expansion is sufficient for realistic
//! variation magnitudes, and that the cost grows as O(r^p) with the number of
//! random variables r and order p. This example sweeps the order for both the
//! combined 2-variable model (ξ_G, ξ_L) and the split 3-variable model
//! (ξ_W, ξ_T, ξ_L), reporting accuracy against a common Monte Carlo reference
//! and the OPERA runtime.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example order_convergence
//! ```

use opera::compare::compare;
use opera::monte_carlo::{run as run_monte_carlo, MonteCarloOptions};
use opera::stochastic::{solve, OperaOptions};
use opera::transient::TransientOptions;
use opera_grid::GridSpec;
use opera_variation::{StochasticGridModel, VariationSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = GridSpec::industrial(1_200).with_seed(5).build()?;
    let transient = TransientOptions::new(0.1e-9, grid.waveform_end_time());
    let spec = VariationSpec::paper_defaults();

    let models = [
        (
            "2 vars (ξ_G, ξ_L)",
            StochasticGridModel::inter_die(&grid, &spec)?,
        ),
        (
            "3 vars (ξ_W, ξ_T, ξ_L)",
            StochasticGridModel::inter_die_three_variable(&grid, &spec)?,
        ),
    ];

    println!(
        "{:<24} {:>5} {:>8} {:>12} {:>12} {:>10}",
        "model", "order", "N+1", "µ err %VDD", "σ err %", "time (s)"
    );
    for (name, model) in &models {
        // A common Monte Carlo reference per model.
        let mc = run_monte_carlo(model, &MonteCarloOptions::new(300, 17, transient))?;
        for order in 1..=3u32 {
            let started = std::time::Instant::now();
            let solution = solve(model, &OperaOptions::with_order(order, transient))?;
            let seconds = started.elapsed().as_secs_f64();
            let errors = compare(&solution, &mc, grid.vdd());
            println!(
                "{:<24} {:>5} {:>8} {:>12.5} {:>12.2} {:>10.3}",
                name,
                order,
                solution.basis_size(),
                errors.avg_mean_error_percent,
                errors.avg_std_error_percent,
                seconds
            );
        }
    }
    println!(
        "\nNote: the σ error against a 300-sample Monte Carlo plateaus at the MC noise floor;\n\
         the order-2 → order-3 difference shows the truncation is already converged (paper §5.2)."
    );
    Ok(())
}
