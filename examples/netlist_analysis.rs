//! Stochastic IR-drop analysis of a SPICE-style power-grid deck: the
//! Table-1-style report for *named* nodes.
//!
//! Reads a deck (default: the golden IBM-style fixture), builds an
//! [`OperaEngine`] from it — grid lowering, variation model, Galerkin
//! assembly and factorisation happen once — and prints the worst mean
//! drops, their ±3σ spread and the accuracy against a Monte Carlo
//! baseline, under both the Galerkin and the stochastic-collocation
//! method. See `docs/NETLIST.md` for the deck grammar.
//!
//! ```text
//! cargo run --release --example netlist_analysis -- [deck.sp] [mc_samples]
//! ```

use opera::compare::compare;
use opera::engine::{CollocationConfig, McConfig, OperaEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let path = args.next().unwrap_or_else(|| {
        format!(
            "{}/tests/fixtures/ibmpg_style.sp",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    let mc_samples: usize = match args.next() {
        Some(n) => n.parse()?,
        None => 200,
    };

    // 1. Parse + lower + build: one assembly, one factorisation. Netlist
    //    errors arrive with deck line numbers.
    let started = std::time::Instant::now();
    let engine = OperaEngine::for_netlist(&path)?
        .mc_samples(mc_samples)
        .build()?;
    let setup = started.elapsed();
    let grid = engine.grid();
    let vdd = grid.vdd();
    println!("deck: {path}");
    println!(
        "grid: {} nodes, {} branches, {} pads, {} sources, VDD = {} V",
        grid.node_count(),
        grid.branches().len(),
        grid.pad_nodes().len(),
        grid.sources().len(),
        vdd
    );
    println!(
        "engine: order {}, {} basis functions, transient {:.0} ps step to {:.2} ns \
         (from the deck's .tran), set up in {setup:.2?}",
        2,
        engine.basis_size(),
        engine.transient().time_step * 1e12,
        engine.transient().end_time * 1e9,
    );

    // 2. Galerkin: the single augmented solve of the paper.
    let t0 = std::time::Instant::now();
    let galerkin = engine.solve()?;
    let galerkin_seconds = t0.elapsed().as_secs_f64();

    // 3. Collocation cross-check: deterministic node solves on a Smolyak
    //    grid, one shared symbolic analysis.
    let colloc = engine.collocation(&CollocationConfig::smolyak(2))?;

    // 4. Monte Carlo baseline for the accuracy columns.
    let t1 = std::time::Instant::now();
    let mc = engine.monte_carlo(&McConfig::new(mc_samples, 42))?;
    let mc_seconds = t1.elapsed().as_secs_f64();

    // --- Table-1-style row per method.
    println!("\nworst stochastic IR drop (named nodes):");
    println!(
        "{:>14} | {:>10} {:>9} {:>12} | {:>11} {:>11}",
        "method", "node", "drop (mV)", "±3σ (% µ)", "µ err (%V)", "σ err (%)"
    );
    for (label, solution, _seconds) in [
        ("galerkin", &galerkin, galerkin_seconds),
        ("collocation", &colloc.solution, colloc.seconds),
    ] {
        let (node, k, drop) = solution.worst_mean_drop(vdd);
        let sigma = solution.std_dev_at(k, node);
        let errors = compare(solution, &mc, vdd);
        println!(
            "{:>14} | {:>10} {:>9.3} {:>12.1} | {:>11.4} {:>11.2}",
            label,
            engine.node_label(node),
            1e3 * drop,
            100.0 * 3.0 * sigma / drop,
            errors.avg_mean_error_percent,
            errors.avg_std_error_percent,
        );
    }

    // --- The five worst named nodes under the Galerkin solution.
    let (_, k_worst, _) = galerkin.worst_mean_drop(vdd);
    let mut drops: Vec<(usize, f64)> = (0..galerkin.node_count())
        .map(|n| (n, vdd - galerkin.mean_at(k_worst, n)))
        .collect();
    drops.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\nfive worst nodes at the peak time step:");
    for &(node, drop) in drops.iter().take(5) {
        println!(
            "  {:>10}  mean drop {:>7.3} mV,  σ {:>7.4} mV",
            engine.node_label(node),
            1e3 * drop,
            1e3 * galerkin.std_dev_at(k_worst, node),
        );
    }

    println!(
        "\ntimings: galerkin {galerkin_seconds:.3} s ({} nodes), collocation {:.3} s \
         ({} node solves, {} symbolic analysis), monte carlo {mc_seconds:.3} s \
         ({mc_samples} samples, speedup {:.1}x)",
        grid.node_count(),
        colloc.seconds,
        colloc.nodes,
        colloc.symbolic_analyses,
        mc_seconds / galerkin_seconds.max(1e-12),
    );
    Ok(())
}
