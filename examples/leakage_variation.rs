//! Special case of the paper (Section 5.1): variations only in the
//! excitation.
//!
//! Threshold-voltage variations in two intra-die regions make the leakage
//! currents lognormal. Because the grid matrices stay deterministic, the
//! Galerkin system decouples: one factorisation of the nominal companion
//! matrix is shared by all `N + 1` coefficient systems — the same
//! setup-once/solve-many economics the `OperaEngine` provides for the general
//! case, but exploiting the decoupling so no augmented system is ever built.
//! The example prints the exact mean/σ of the worst drop (prior work could
//! only bound the variance) and validates against a shared-factorisation
//! Monte Carlo run.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example leakage_variation
//! ```

use opera::monte_carlo::{run_leakage, MonteCarloOptions};
use opera::special_case::{solve_leakage, SpecialCaseOptions};
use opera::transient::TransientOptions;
use opera_grid::GridSpec;
use opera_variation::LeakageModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = GridSpec::industrial(1_500).with_seed(3).build()?;
    println!(
        "grid: {} nodes, VDD = {:.2} V",
        grid.node_count(),
        grid.vdd()
    );

    // Two intra-die regions; σ(Vth) = 40 mV; leakage sensitivity 23 / V
    // (≈ ln 10 / 100 mV-per-decade subthreshold slope). Median leakage of
    // 30 µA per node so that leakage is a visible share of the total current.
    let leakage = LeakageModel::uniform_slices(grid.node_count(), 2, 3.0e-5, 0.04, 23.0)?;
    println!(
        "leakage: {} regions, lognormal sigma λ·σ_Vth = {:.3}",
        leakage.region_count(),
        leakage.lognormal_sigma()
    );

    let transient = TransientOptions::new(0.05e-9, grid.waveform_end_time());
    let started = std::time::Instant::now();
    let solution = solve_leakage(&grid, &leakage, &SpecialCaseOptions::order2(transient))?;
    let opera_time = started.elapsed();
    let (node, k, drop) = solution.worst_mean_drop(grid.vdd());
    println!(
        "\nOPERA special case ({} decoupled systems, single factorisation) in {:.2?}",
        solution.basis_size(),
        opera_time
    );
    println!(
        "worst mean drop {:.2} mV at node {node}, σ = {:.3} mV, ±3σ = {:.1} % of the drop",
        1e3 * drop,
        1e3 * solution.std_dev_at(k, node),
        300.0 * solution.std_dev_at(k, node) / drop
    );

    // Monte Carlo baseline (also shares one factorisation since the matrices
    // are deterministic — the speed-up here comes from avoiding the repeated
    // transient solves).
    let started = std::time::Instant::now();
    let mc = run_leakage(&grid, &leakage, &MonteCarloOptions::new(200, 11, transient))?;
    let mc_time = started.elapsed();
    println!(
        "\nMonte Carlo ({} samples) in {:.2?} (speed-up {:.0}x)",
        mc.samples,
        mc_time,
        mc_time.as_secs_f64() / opera_time.as_secs_f64()
    );
    println!(
        "mean drop MC {:.2} mV, σ MC {:.3} mV (OPERA gives the moments exactly, not bounds)",
        1e3 * (grid.vdd() - mc.mean[k][node]),
        1e3 * mc.std_dev_at(k, node)
    );
    Ok(())
}
