//! Demonstrates the `opera_trace` observability layer end to end — and
//! doubles as an overhead check: the same engine is built and solved twice,
//! first with tracing disabled (the production default), then with the
//! sink enabled, and both wall times are printed side by side before the
//! hierarchical trace report.
//!
//! ```text
//! cargo run --release --example trace_demo            # 5 % paper grid
//! cargo run --release --example trace_demo -- 1.0     # full paper scale
//! ```

use std::time::Instant;

use opera::engine::OperaEngine;
use opera_grid::GridSpec;
use opera_variation::VariationSpec;

fn build_and_solve(spec: &GridSpec) -> Result<f64, Box<dyn std::error::Error>> {
    let started = Instant::now();
    let engine = OperaEngine::for_grid(spec.clone())?
        .variation(VariationSpec::paper_defaults())
        .order(2)
        .time_step(0.1e-9)
        .end_time(1.0e-9)
        .build()?;
    let _solution = engine.solve()?;
    Ok(started.elapsed().as_secs_f64())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(0.05);
    let spec = GridSpec::paper_grid(0)?.scaled_nodes(scale);
    println!("paper grid 0 scaled to {scale}: build + order-2 solve, twice\n");

    // Production default: sink disabled, every trace call is one relaxed
    // atomic branch.
    opera_trace::disable();
    let untraced = build_and_solve(&spec)?;
    println!("tracing disabled: {untraced:.3}s");

    // Same work with the sink recording spans, counters and gauges.
    opera_trace::reset();
    opera_trace::enable();
    let traced = build_and_solve(&spec)?;
    let snapshot = opera_trace::drain();
    opera_trace::disable();
    println!(
        "tracing enabled:  {traced:.3}s  ({:+.1}% wall-clock)\n",
        (traced / untraced - 1.0) * 100.0
    );

    print!("{}", snapshot.text_report());
    Ok(())
}
