//! Cross-checks the paper's Galerkin spectral-stochastic solver against the
//! stochastic-collocation subsystem on the (scaled) first paper grid, at
//! expansion orders 1–3, with a Monte Carlo reference.
//!
//! ```text
//! cargo run --release --example collocation_vs_galerkin
//! ```

use opera::compare::compare;
use opera::engine::{CollocationConfig, McConfig, OperaEngine};
use opera_grid::GridSpec;
use opera_variation::VariationSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 2 % of the 19,181-node paper grid so the example finishes in seconds;
    // raise the factor to approach the paper-scale comparison.
    let spec = GridSpec::paper_grid(0)?.scaled_nodes(0.02);
    let mc_samples = 300;
    println!("Galerkin vs collocation vs Monte Carlo — paper grid 1 scaled to 2 %");
    println!(
        "{:>5} {:>6} {:>6} | {:>12} {:>12} | {:>10} {:>10} | {:>9} {:>9}",
        "order",
        "N+1",
        "nodes",
        "gal µerr %V",
        "col µerr %V",
        "gal σerr %",
        "col σerr %",
        "gal (s)",
        "col (s)"
    );

    // The Monte Carlo reference depends only on the model and the transient
    // settings, not on the expansion order — computed once, reused below.
    let mut mc_baseline = None;
    for order in 1..=3u32 {
        let engine = OperaEngine::for_grid(spec.clone())?
            .variation(VariationSpec::paper_defaults())
            .order(order)
            .time_step(0.1e-9)
            .end_time(1.0e-9)
            .build()?;
        let vdd = engine.grid().vdd();
        if mc_baseline.is_none() {
            mc_baseline = Some(engine.monte_carlo(&McConfig::new(mc_samples, 37))?);
        }
        let mc = mc_baseline.as_ref().expect("just populated");

        let started = std::time::Instant::now();
        let galerkin = engine.solve()?;
        let galerkin_seconds = engine.setup_seconds() + started.elapsed().as_secs_f64();
        // Pair the quadrature level with the expansion order: a level-L
        // Smolyak grid integrates total degree 2L + 1 exactly.
        let colloc = engine.collocation(&CollocationConfig::smolyak(order))?;

        let galerkin_err = compare(&galerkin, mc, vdd);
        let colloc_err = compare(&colloc.solution, mc, vdd);
        println!(
            "{:>5} {:>6} {:>6} | {:>12.5} {:>12.5} | {:>10.2} {:>10.2} | {:>9.3} {:>9.3}",
            order,
            engine.basis_size(),
            colloc.nodes,
            galerkin_err.avg_mean_error_percent,
            colloc_err.avg_mean_error_percent,
            galerkin_err.avg_std_error_percent,
            colloc_err.avg_std_error_percent,
            galerkin_seconds,
            colloc.seconds,
        );
        assert_eq!(colloc.symbolic_analyses, 1);
    }
    println!(
        "\nBoth methods recover the same polynomial-chaos coefficients; the collocation \
         sweep is embarrassingly parallel and shares one symbolic analysis across all \
         of its deterministic node solves."
    );
    Ok(())
}
