//! Industrial-scale experiment: one (scaled) row of the paper's Table 1.
//!
//! Reproduces the paper's experimental flow on a scaled version of one of the
//! seven industrial grids: order-2 OPERA analysis vs a Monte Carlo baseline,
//! reporting the accuracy of the mean and standard deviation, the ±3σ spread
//! relative to the nominal drop, and the speed-up.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example industrial_grid [row 0..6] [scale] [mc_samples]
//! cargo run --release --example industrial_grid 0 0.1 200
//! ```
//!
//! Row 0 at scale 1.0 with 1000 samples reproduces the first Table 1 row at
//! full size (19,181 nodes) — expect a long Monte Carlo run.

use opera::analysis::{run_experiment, ExperimentConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let row: usize = args.get(1).map(|s| s.parse()).transpose()?.unwrap_or(0);
    let scale: f64 = args.get(2).map(|s| s.parse()).transpose()?.unwrap_or(0.1);
    let samples: usize = args.get(3).map(|s| s.parse()).transpose()?.unwrap_or(200);

    let config = ExperimentConfig::table1_row_scaled(row, scale, samples)?;
    println!(
        "Table 1 row {} (scaled x{:.2}): target {} nodes, {} MC samples, order-{} expansion",
        row + 1,
        scale,
        config.grid_spec.target_nodes,
        config.mc_samples,
        config.order
    );

    let report = run_experiment(&config)?;

    println!("\n--- results ------------------------------------------------");
    println!("nodes                         : {}", report.node_count);
    println!(
        "avg / max error in mean  (%VDD): {:.4} / {:.4}",
        report.errors.avg_mean_error_percent, report.errors.max_mean_error_percent
    );
    println!(
        "avg / max error in sigma (%)   : {:.2} / {:.2}",
        report.errors.avg_std_error_percent, report.errors.max_std_error_percent
    );
    println!(
        "±3σ variation (% of nominal µ0): avg {:.1} / max {:.1}",
        report.opera.avg_three_sigma_percent_of_nominal,
        report.opera.max_three_sigma_percent_of_nominal
    );
    println!(
        "mean shift vs nominal  (%VDD)  : {:.4}",
        report.opera.avg_mean_shift_percent_of_vdd
    );
    println!(
        "CPU time Monte Carlo / OPERA   : {:.2} s / {:.2} s  (speed-up {:.0}x)",
        report.monte_carlo_seconds, report.opera_seconds, report.speedup
    );

    println!(
        "\n--- drop distribution at node {} (Figure 1/2) ---------------",
        report.distribution.node
    );
    println!("{:>12} | {:>10} | {:>10}", "drop %VDD", "OPERA %", "MC %");
    let centers = report.distribution.opera.centers();
    let opera_pct = report.distribution.opera.percentages();
    let mc_pct = report.distribution.monte_carlo.percentages();
    for ((c, o), m) in centers.iter().zip(&opera_pct).zip(&mc_pct) {
        println!("{c:>12.3} | {o:>10.1} | {m:>10.1}");
    }
    Ok(())
}
