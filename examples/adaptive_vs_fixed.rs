//! Adaptive TR-BDF2 vs fixed-step integration: the step-count/accuracy
//! trade-off table.
//!
//! Two circuits with closed-form solutions (the same ones
//! `tests/golden_waveforms.rs` pins budgets on):
//!
//! * a **stiff RC pair** — eigenvalues 250× apart under a smooth ramp, the
//!   regime where a fixed step must resolve the fast mode everywhere, and
//! * a **PULSE edge** — sharp trapezoid edges on an RC node, where all the
//!   error lives in four corner transients.
//!
//! For each, the table shows every fixed-step scheme at the same grid and
//! the adaptive controller at a few tolerances: steps taken, steps
//! rejected, numeric refactorisations (all sharing **one** symbolic
//! analysis), max error against the analytic waveform, and wall time.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example adaptive_vs_fixed
//! ```

use std::time::Instant;

use opera::adaptive::{solve_transient_adaptive, AdaptiveOptions};
use opera::transient::{solve_transient, IntegrationMethod, TransientOptions, TransientSolution};
use opera_sparse::{CsrMatrix, TripletMatrix};

// --- stiff RC pair (see tests/golden_waveforms.rs for the derivation) ----

const STIFF_SIGMA: f64 = 4.0;
const STIFF_U_INF: [f64; 2] = [1.0, 0.5];

fn stiff_circuit() -> (CsrMatrix, CsrMatrix) {
    let mut g = TripletMatrix::new(2, 2);
    g.push(0, 0, 2.0);
    g.push(1, 1, 500.0);
    g.push(0, 1, -1.0);
    g.push(1, 0, -1.0);
    let mut c = TripletMatrix::new(2, 2);
    c.push(0, 0, 1.0);
    c.push(1, 1, 1.0);
    (g.to_csr(), c.to_csr())
}

fn stiff_excitation(t: f64) -> Vec<f64> {
    let ramp = 1.0 - (-STIFF_SIGMA * t).exp();
    vec![STIFF_U_INF[0] * ramp, STIFF_U_INF[1] * ramp]
}

/// Exact solution via the 2×2 eigen-decomposition of G (C = I).
fn stiff_reference(t: f64) -> Vec<f64> {
    let (a, b, d) = (2.0f64, -1.0f64, 500.0f64);
    let mid = 0.5 * (a + d);
    let half_gap = (0.25 * (a - d) * (a - d) + b * b).sqrt();
    let mut v = [0.0f64; 2];
    for lambda in [mid - half_gap, mid + half_gap] {
        let (mut qx, mut qy) = (b, lambda - a);
        let norm = (qx * qx + qy * qy).sqrt();
        qx /= norm;
        qy /= norm;
        let w = qx * STIFF_U_INF[0] + qy * STIFF_U_INF[1];
        let forced = w / lambda;
        let driven = w / (STIFF_SIGMA - lambda);
        let y =
            forced + driven * (-STIFF_SIGMA * t).exp() + (-forced - driven) * (-lambda * t).exp();
        v[0] += qx * y;
        v[1] += qy * y;
    }
    v.to_vec()
}

// --- PULSE edge ----------------------------------------------------------

const PULSE_G: f64 = 1.0;
const PULSE_C: f64 = 0.02;
const PULSE_POINTS: [(f64, f64); 6] = [
    (0.0, 0.0),
    (0.10, 0.0),
    (0.15, 1.0),
    (0.50, 1.0),
    (0.55, 0.0),
    (1.0, 0.0),
];

fn pulse_excitation(t: f64) -> Vec<f64> {
    let points = &PULSE_POINTS;
    if t <= points[0].0 {
        return vec![points[0].1];
    }
    for pair in points.windows(2) {
        let ((t0, i0), (t1, i1)) = (pair[0], pair[1]);
        if t <= t1 {
            return vec![i0 + (i1 - i0) * (t - t0) / (t1 - t0)];
        }
    }
    vec![points[points.len() - 1].1]
}

/// Exact piecewise response: on each linear current segment the solution is
/// a linear particular part plus a decaying exponential, chained forward.
fn pulse_reference(t: f64) -> Vec<f64> {
    let lambda = PULSE_G / PULSE_C;
    let mut v = 0.0f64;
    let mut segment_end = v;
    for pair in PULSE_POINTS.windows(2) {
        let ((t0, i0), (t1, i1)) = (pair[0], pair[1]);
        let beta = (i1 - i0) / (t1 - t0);
        let particular =
            |tau: f64| (i0 + beta * tau) / PULSE_G - beta * PULSE_C / (PULSE_G * PULSE_G);
        let tau_end = if t < t1 { t - t0 } else { t1 - t0 };
        segment_end = particular(tau_end) + (v - particular(0.0)) * (-lambda * tau_end).exp();
        if t < t1 {
            return vec![segment_end];
        }
        v = segment_end;
    }
    vec![segment_end]
}

// --- the table -----------------------------------------------------------

fn max_error(solution: &TransientSolution, reference: impl Fn(f64) -> Vec<f64>) -> f64 {
    let mut worst = 0.0f64;
    for (k, &t) in solution.times.iter().enumerate() {
        for (node, &v) in solution.state_at(k).iter().enumerate() {
            worst = worst.max((v - reference(t)[node]).abs());
        }
    }
    worst
}

fn row(label: &str, steps: u64, rejected: u64, refactors: u64, err: f64, seconds: f64) {
    println!(
        "{label:<34} {steps:>6} {rejected:>9} {refactors:>10} {err:>11.3e} {:>9.1}",
        seconds * 1e6
    );
}

#[allow(clippy::too_many_arguments)] // a table row is wide: circuit + grid + tolerance sweep
fn run_circuit(
    name: &str,
    g: &CsrMatrix,
    c: &CsrMatrix,
    excitation: impl Fn(f64) -> Vec<f64> + Copy,
    reference: impl Fn(f64) -> Vec<f64> + Copy,
    time_step: f64,
    end_time: f64,
    tolerances: &[(f64, f64)],
) -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== {name} (fixed grid: h = {time_step}, horizon {end_time}) ==");
    println!(
        "{:<34} {:>6} {:>9} {:>10} {:>11} {:>9}",
        "integrator", "steps", "rejected", "refactors", "max error", "µs"
    );
    for method in [
        IntegrationMethod::BackwardEuler,
        IntegrationMethod::Trapezoidal,
        IntegrationMethod::TrBdf2,
    ] {
        let options = TransientOptions {
            time_step,
            end_time,
            method,
        };
        let start = Instant::now();
        let sol = solve_transient(g, c, excitation, &options)?;
        let seconds = start.elapsed().as_secs_f64();
        let err = max_error(&sol, reference);
        row(
            &format!("fixed {method:?}"),
            (sol.times.len() - 1) as u64,
            0,
            1,
            err,
            seconds,
        );
    }
    for &(rel_tol, abs_tol) in tolerances {
        let options = TransientOptions {
            time_step,
            end_time,
            method: IntegrationMethod::TrBdf2,
        };
        let mut adaptive = AdaptiveOptions::with_rel_tol(rel_tol);
        adaptive.abs_tol = abs_tol;
        let start = Instant::now();
        let sol = solve_transient_adaptive(g, c, excitation, &options, &adaptive)?;
        let seconds = start.elapsed().as_secs_f64();
        let err = max_error(&sol.solution, reference);
        assert_eq!(sol.stats.symbolic_analyses, 1);
        row(
            &format!("adaptive TrBdf2 rel={rel_tol:.0e}"),
            sol.stats.steps_accepted,
            sol.stats.steps_rejected,
            sol.stats.refactorizations,
            err,
            seconds,
        );
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Adaptive TR-BDF2 vs fixed-step integration (docs/TRANSIENT.md)");
    println!("errors are max |v - analytic| over the output grid; every run");
    println!("performs exactly one symbolic analysis.");

    let (g, c) = stiff_circuit();
    run_circuit(
        "stiff RC pair",
        &g,
        &c,
        stiff_excitation,
        stiff_reference,
        0.005,
        2.0,
        &[(1e-3, 1e-6), (1e-5, 1e-8), (1e-7, 1e-10)],
    )?;

    let mut gp = TripletMatrix::new(1, 1);
    gp.push(0, 0, PULSE_G);
    let mut cp = TripletMatrix::new(1, 1);
    cp.push(0, 0, PULSE_C);
    run_circuit(
        "PULSE edge",
        &gp.to_csr(),
        &cp.to_csr(),
        pulse_excitation,
        pulse_reference,
        0.005,
        1.0,
        &[(1e-2, 1e-3), (1e-3, 1e-4), (1e-4, 1e-6)],
    )?;

    println!(
        "\nThe adaptive rows reach the fixed-step trapezoidal accuracy with a\n\
         fraction of the steps; tightening rel_tol buys accuracy back at a\n\
         sublinear step-count cost. See tests/golden_waveforms.rs for the\n\
         pinned budgets."
    );
    Ok(())
}
